// Package xmlest estimates answer sizes for XML twig queries using
// position histograms, reproducing "Estimating Answer Sizes for XML
// Queries" (Wu, Patel, Jagadish — EDBT 2002).
//
// A Database wraps an XML document collection with interval-numbered
// nodes and a catalog of predicates. An Estimator summarizes the
// catalog into position histograms (and coverage histograms for
// no-overlap predicates) and answers answer-size queries for twig
// patterns without touching the data again:
//
//	db, _ := xmlest.Open(strings.NewReader(doc))
//	db.AddAllTagPredicates()
//	est, _ := db.NewEstimator(xmlest.Options{GridSize: 10})
//	res, _ := est.Estimate("//department//faculty[.//TA][.//RA]")
//	fmt.Println(res.Estimate, res.Elapsed)
//
// Internally the collection is sharded: each batch of appended
// documents is summarized as its own immutable shard, and estimates
// are the sums of per-shard estimates — an exact decomposition, since
// a twig match never spans two documents under the dummy root.
// Database.Append lands new documents by summarizing only those
// documents, concurrent estimation serves from an atomically-swapped
// snapshot, and Database.Compact merges small shards off the serving
// path. A database opened once and never appended to behaves exactly
// like the paper's single mega-tree summary.
//
// Exact answer sizes (ground truth) are available through
// Database.Count, and the naive and schema-only baselines of the
// paper's evaluation through Naive and SchemaUpperBound.
package xmlest

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"xmlest/internal/accuracy"
	"xmlest/internal/cache"
	"xmlest/internal/core"
	"xmlest/internal/match"
	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/shard"
	"xmlest/internal/stream"
	"xmlest/internal/xmltree"
)

// Re-exported predicate constructors. Predicates are registered on a
// Database before building an Estimator.
type (
	// Predicate is a boolean node predicate.
	Predicate = predicate.Predicate
	// Tag matches element tags ("element-tag predicates").
	Tag = predicate.Tag
	// ContentEquals matches exact text content.
	ContentEquals = predicate.ContentEquals
	// ContentPrefix matches a text-content prefix.
	ContentPrefix = predicate.ContentPrefix
	// ContentSuffix matches a text-content suffix.
	ContentSuffix = predicate.ContentSuffix
	// ContentContains matches a text-content substring.
	ContentContains = predicate.ContentContains
	// NumericRange matches numeric text content within [Lo, Hi].
	NumericRange = predicate.NumericRange
	// TagContent matches tag and exact content together.
	TagContent = predicate.TagContent
	// And, Or, Not compose predicates.
	And = predicate.And
	Or  = predicate.Or
	Not = predicate.Not
	// Named aliases a predicate under a display name.
	Named = predicate.Named
	// True matches every node.
	True = predicate.True
)

// Options configures estimator construction. See core.Options.
type Options = core.Options

// DefaultOptions mirror the paper's experimental setup (grid size 10).
var DefaultOptions = core.DefaultOptions

// Result is one estimation outcome.
type Result = core.Result

// CompactionPolicy tunes Database.Compact's size-tiered shard merging.
// See shard.CompactionPolicy.
type CompactionPolicy = shard.CompactionPolicy

// ShardInfo describes one live shard for introspection.
type ShardInfo struct {
	// ID is the shard's store-unique id (usable with DropShard).
	ID uint64
	// Docs and Nodes are the shard's document and node counts.
	Docs  int
	Nodes int
	// SummaryOnly marks shards that carry only a prebuilt summary (for
	// example, loaded or streamed): they estimate but hold no documents.
	SummaryOnly bool
	// Version is the first serving snapshot that contained the shard —
	// the visibility watermark: any estimate served at Version or later
	// reflects the shard's documents. Zero for shards of a loaded,
	// store-less set.
	Version uint64
	// WALSeq is the shard's write-ahead-log watermark on a durable
	// database: the highest logged batch it covers (its own record for
	// an appended shard, the group maximum for a compacted one). Zero
	// on non-durable databases and for bootstrap shards.
	WALSeq uint64
}

// Database is an XML document collection prepared for estimation: a
// set of interval-numbered document shards sharing one predicate
// vocabulary. A single Open (or FromTree/FromCatalog) produces one
// shard — the paper's mega-tree; Append grows the collection one shard
// per call.
//
// Exact-counting paths (Count, Find, Participation, the baselines)
// consult a merged mega-tree view, materialized lazily per version
// when the database holds more than one shard.
type Database struct {
	store *shard.Store

	// durable, when non-nil, is the write-ahead-log + checkpoint layer
	// behind the store (see OpenDurable): mutations route through it so
	// acknowledged appends survive crashes.
	durable *shard.DurableStore

	// Lazily merged mega-tree view, cached per store version. The
	// single-shard case bypasses the cache and serves the shard's own
	// tree and (live) catalog, preserving the seed's exact behaviour.
	mergedMu  sync.Mutex
	mergedVer uint64
	merged    *xmltree.Tree
	mergedCat *predicate.Catalog
}

// Open parses one or more XML documents into a Database holding one
// shard. Multiple documents are merged under a dummy root, as the paper
// prescribes.
func Open(readers ...io.Reader) (*Database, error) {
	tree, err := xmltree.ParseCollection(readers, xmltree.DefaultParseOptions)
	if err != nil {
		return nil, err
	}
	return FromTree(tree), nil
}

// OpenFiles parses the named XML files into a Database.
func OpenFiles(paths ...string) (*Database, error) {
	readers := make([]io.Reader, 0, len(paths))
	closers := make([]*os.File, 0, len(paths))
	defer func() {
		for _, f := range closers {
			f.Close()
		}
	}()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		closers = append(closers, f)
		readers = append(readers, f)
	}
	return Open(readers...)
}

// FromTree wraps an already-built tree (for example, from the synthetic
// dataset generators) as the database's first shard.
func FromTree(tree *xmltree.Tree) *Database {
	return FromCatalog(predicate.NewCatalog(tree))
}

// FromCatalog wraps a tree with an existing predicate catalog as the
// database's first shard. The catalog's predicates become the recipe
// future appended shards are materialized with.
func FromCatalog(cat *predicate.Catalog) *Database {
	st := shard.NewStore(predicate.SpecFromCatalog(cat))
	if _, err := st.AppendCatalog(cat); err != nil {
		// Appending a catalog-backed shard cannot fail: the tree is
		// already built and no summaries are active yet.
		panic("xmlest: " + err.Error())
	}
	return &Database{store: st}
}

// Append parses one or more XML documents and lands them as a new
// shard: only the new documents are scanned and summarized, so the
// cost is independent of the existing corpus size. Estimators created
// by NewEstimator see the new shard on their next call; snapshots
// taken before the append do not. It returns the new shard's info.
//
// Append is safe to call concurrently with estimation; concurrent
// Appends serialize.
func (db *Database) Append(readers ...io.Reader) (ShardInfo, error) {
	if db.durable != nil {
		// The durable path needs the raw bytes: they are what the WAL
		// logs and what recovery replays.
		docs, err := slurp(readers)
		if err != nil {
			return ShardInfo{}, err
		}
		return db.appendDurable(docs)
	}
	tree, err := xmltree.ParseCollection(readers, xmltree.DefaultParseOptions)
	if err != nil {
		return ShardInfo{}, err
	}
	return db.AppendTree(tree)
}

// AppendTree lands an already-built tree as a new shard (see Append).
// On a durable database the tree's documents are re-serialized as XML
// for the write-ahead log; trees from Parse or the generators round-
// trip exactly (parsing trims inter-element whitespace).
func (db *Database) AppendTree(tree *xmltree.Tree) (ShardInfo, error) {
	if db.durable != nil {
		docs, err := serializeDocs(tree)
		if err != nil {
			return ShardInfo{}, err
		}
		return db.appendDurable(docs)
	}
	sh, err := db.store.AppendTree(tree)
	if err != nil {
		return ShardInfo{}, err
	}
	return shardInfo(sh), nil
}

// AppendStream lands one XML document from a re-openable byte stream
// as a summary-only shard, never buffering the document in memory: the
// stream is scanned twice (pass one sizes the position space and
// discovers the tag vocabulary, pass two feeds the histograms) with
// memory bounded by document depth plus the summary itself — the
// ingest path for documents that exceed memory. gridSize 0 uses the
// data directory's pinned grid (durable) or DefaultOptions.GridSize.
//
// The database's predicate vocabulary must be all-tags with no
// registered tree predicates: a byte stream can answer "which tag is
// this element" but not predicates that need the materialized tree.
//
// On a durable database the shard is made durable by an immediate
// checkpoint rather than a WAL record — raw bytes were never held, so
// there is nothing to replay — and the ack returns only after the
// checkpoint commits.
func (db *Database) AppendStream(open func() (io.ReadCloser, error), gridSize int) (ShardInfo, error) {
	if open == nil {
		return ShardInfo{}, fmt.Errorf("xmlest: AppendStream needs a source")
	}
	spec := db.store.Spec()
	if !spec.AllTags || len(spec.Preds) > 0 {
		return ShardInfo{}, fmt.Errorf(
			"xmlest: streaming append requires the all-tags predicate vocabulary (tree-based predicates cannot be evaluated on a byte stream)")
	}
	if db.durable != nil {
		pinned := db.durable.GridSize()
		if gridSize == 0 {
			gridSize = pinned
		}
		if gridSize != pinned {
			return ShardInfo{}, fmt.Errorf(
				"xmlest: streaming append grid %d differs from the data directory's pinned grid %d", gridSize, pinned)
		}
	} else if gridSize == 0 {
		gridSize = DefaultOptions.GridSize
	}
	est, res, err := stream.BuildAllTagsEstimator(stream.Source(open), gridSize)
	if err != nil {
		return ShardInfo{}, err
	}
	if res.Nodes == 0 {
		return ShardInfo{}, fmt.Errorf("xmlest: refusing to append an empty tree")
	}
	var sh *shard.Shard
	if db.durable != nil {
		sh, err = db.durable.AppendSummary(est, 1, res.Nodes)
	} else {
		sh, err = db.store.AppendSummary(est, 1, res.Nodes)
	}
	if err != nil {
		return ShardInfo{}, err
	}
	return shardInfo(sh), nil
}

// DropShard removes a shard from the serving set, reporting whether it
// was present. Estimates stop reflecting its documents immediately;
// earlier snapshots still see them. On a durable database the drop is
// sealed by an immediate checkpoint (otherwise recovery would replay
// the shard's WAL record and resurrect it); the error reports a failed
// checkpoint.
func (db *Database) DropShard(id uint64) (bool, error) {
	if db.durable != nil {
		return db.durable.Drop(id)
	}
	return db.store.Drop(id), nil
}

// Compact runs one round of size-tiered compaction: small shards are
// rebuilt into one merged shard entirely off the serving path, then
// swapped in atomically. The zero policy uses defaults (see
// shard.DefaultCompactionPolicy). It returns the number of shards
// merged away (0 when nothing qualified).
func (db *Database) Compact(policy CompactionPolicy) (int, error) {
	return db.store.Compact(policy)
}

// Shards lists the live shards in serving order.
func (db *Database) Shards() []ShardInfo {
	shs := db.store.Current().Shards()
	out := make([]ShardInfo, len(shs))
	for i, sh := range shs {
		out[i] = shardInfo(sh)
	}
	return out
}

// ShardCount returns the number of live shards.
func (db *Database) ShardCount() int { return db.store.Current().Len() }

// DatabaseStats describes the serving corpus at one snapshot — the
// cheap introspection the daemon's /stats endpoint reports. It is
// computed from shard metadata only: no merged view is materialized.
type DatabaseStats struct {
	// Version is the snapshot's version (see Database.Version).
	Version uint64 `json:"version"`
	// Shards counts live shards; SummaryOnlyShards of them carry only
	// prebuilt summaries.
	Shards            int `json:"shards"`
	SummaryOnlyShards int `json:"summary_only_shards"`
	// Docs and Nodes sum the per-shard document and node counts.
	Docs  int `json:"docs"`
	Nodes int `json:"nodes"`
	// Predicates is the registered vocabulary size (first tree-backed
	// shard's catalog; 0 when every shard is summary-only).
	Predicates int `json:"predicates"`
}

// Stats returns corpus statistics from one consistent snapshot.
func (db *Database) Stats() DatabaseStats { return statsOf(db.store.Current()) }

// statsOf aggregates one shard set's statistics — the single source
// both Database.Stats and Estimator.Stats (and through it the daemon's
// /stats endpoint) report from.
func statsOf(set *shard.Set) DatabaseStats {
	s := DatabaseStats{
		Version: set.Version(),
		Shards:  set.Len(),
		Docs:    set.TotalDocs(),
		Nodes:   set.TotalNodes(),
	}
	for _, sh := range set.Shards() {
		if sh.SummaryOnly() {
			s.SummaryOnlyShards++
		} else if s.Predicates == 0 {
			s.Predicates = sh.Catalog().Len()
		}
	}
	return s
}

// Version returns the serving snapshot's version; it increases with
// every Append, DropShard and Compact.
func (db *Database) Version() uint64 { return db.store.Version() }

// Store exposes the underlying shard store for advanced use (streamed
// summary-only shards, custom compaction scheduling).
func (db *Database) Store() *shard.Store { return db.store }

func shardInfo(sh *shard.Shard) ShardInfo {
	return ShardInfo{
		ID:          sh.ID(),
		Docs:        sh.Docs(),
		Nodes:       sh.Nodes(),
		SummaryOnly: sh.SummaryOnly(),
		Version:     sh.InstalledAt(),
		WALSeq:      sh.WALSeq(),
	}
}

// Tree exposes the underlying numbered tree: the single shard's tree,
// or — after appends — a merged mega-tree view over every
// document-backed shard, rebuilt lazily per version.
func (db *Database) Tree() *xmltree.Tree {
	t, _ := db.mergedView()
	return t
}

// Catalog exposes the predicate catalog over Tree().
func (db *Database) Catalog() *predicate.Catalog {
	_, cat := db.mergedView()
	return cat
}

// mergedView returns the mega-tree and catalog over all document-backed
// shards. With exactly one such shard it returns that shard's own tree
// and live catalog (the seed's monolithic behaviour); otherwise it
// merges and re-materializes, cached per store version.
func (db *Database) mergedView() (*xmltree.Tree, *predicate.Catalog) {
	set := db.store.Current()
	backed := make([]*shard.Shard, 0, set.Len())
	for _, sh := range set.Shards() {
		if !sh.SummaryOnly() {
			backed = append(backed, sh)
		}
	}
	if len(backed) == 1 {
		return backed[0].Tree(), backed[0].Catalog()
	}
	db.mergedMu.Lock()
	defer db.mergedMu.Unlock()
	if db.mergedVer == set.Version() && db.merged != nil {
		return db.merged, db.mergedCat
	}
	trees := make([]*xmltree.Tree, len(backed))
	for i, sh := range backed {
		trees[i] = sh.Tree()
	}
	merged := xmltree.Merge(trees...)
	cat := db.store.Spec().Build(merged)
	// Only cache forward: a caller that loaded an older set before a
	// concurrent Append must not evict a newer cached view.
	if db.merged == nil || set.Version() >= db.mergedVer {
		db.merged, db.mergedCat, db.mergedVer = merged, cat, set.Version()
	}
	return merged, cat
}

// invalidateMerged drops the cached merged view after predicate
// registration changed the vocabulary.
func (db *Database) invalidateMerged() {
	db.mergedMu.Lock()
	db.merged, db.mergedCat, db.mergedVer = nil, nil, 0
	db.mergedMu.Unlock()
}

// AddAllTagPredicates registers a Tag predicate per distinct element
// tag and the TRUE predicate, on every shard and in the recipe for
// future shards. It returns the number of tag predicates on the first
// shard. Registration is setup-time API: it must not run concurrently
// with estimation or appends.
func (db *Database) AddAllTagPredicates() int {
	n := db.store.AddAllTagPredicates()
	db.invalidateMerged()
	return n
}

// AddPredicate registers a predicate for use in patterns (referenced by
// name with the {name} syntax, or implicitly for Tag predicates).
func (db *Database) AddPredicate(p Predicate) { db.AddPredicates(p) }

// AddPredicates registers several predicates in one shared tree scan
// per shard (see predicate.Catalog.AddBatch).
func (db *Database) AddPredicates(ps ...Predicate) {
	db.store.AddPredicates(ps...)
	db.invalidateMerged()
}

// Count computes the exact answer size of a twig pattern — the ground
// truth the paper's tables report in their "Real Result" column. With
// multiple shards the per-shard exact counts are summed (matches never
// span documents); summary-only shards cannot be counted over.
func (db *Database) Count(patternSrc string) (float64, error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return 0, err
	}
	return db.store.Current().Count(p)
}

// Participation computes, per pattern node in pre-order, the exact
// number of distinct data nodes participating in at least one match.
func (db *Database) Participation(patternSrc string) ([]int64, error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return nil, err
	}
	tree, cat := db.mergedView()
	return match.Participation(tree, p, resolveIn(cat))
}

// resolveIn returns a predicate resolver over one consistent catalog.
// Exact-matching paths must resolve against the same merged view they
// walk: re-reading db.mergedView() per name could observe a newer
// version mid-walk when Append runs concurrently, yielding node ids
// numbered against a different tree.
func resolveIn(cat *predicate.Catalog) func(string) ([]xmltree.NodeID, error) {
	return func(name string) ([]xmltree.NodeID, error) {
		e, err := cat.Get(name)
		if err != nil {
			return nil, err
		}
		return e.Nodes, nil
	}
}

// Naive returns the paper's naive baseline for a pattern: the product
// of the node counts of its predicates.
func (db *Database) Naive(patternSrc string) (float64, error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return 0, err
	}
	_, cat := db.mergedView()
	est := 1.0
	for _, n := range p.Nodes() {
		e, err := cat.Get(n.PredName())
		if err != nil {
			return 0, err
		}
		est *= float64(e.Count())
	}
	return est, nil
}

// SchemaUpperBound returns the schema-only bound for a two-node
// pattern: the descendant's count when the ancestor predicate has the
// no-overlap property. ok is false for other patterns.
func (db *Database) SchemaUpperBound(patternSrc string) (bound float64, ok bool, err error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return 0, false, err
	}
	nodes := p.Nodes()
	if len(nodes) != 2 {
		return 0, false, nil
	}
	_, cat := db.mergedView()
	anc, err := cat.Get(nodes[0].PredName())
	if err != nil {
		return 0, false, err
	}
	desc, err := cat.Get(nodes[1].PredName())
	if err != nil {
		return 0, false, err
	}
	bound, ok = core.SchemaUpperBound(anc.NoOverlap, desc.Count())
	return bound, ok, nil
}

// Estimator answers answer-size queries from histogram summaries.
// Concurrent estimation is safe: each call serves from an atomically
// loaded immutable shard snapshot, and the internal query caches are
// synchronized. A live estimator (from NewEstimator) follows the
// database — estimates reflect shards appended, dropped or compacted
// after it was created; Snapshot pins the current shard set instead.
// Registering new predicates through Core().Synthesize mutates the
// summary maps and must not run concurrently with estimation.
type Estimator struct {
	db     *Database    // nil for estimators loaded from a summary blob
	store  *shard.Store // nil for loaded estimators
	opts   core.Options
	pinned *shard.Set // non-nil: frozen snapshot, ignores later mutations

	// compiled memoizes Compile results per pattern source, so the hot
	// path of Estimate skips re-parsing identical queries. Entries
	// rebind themselves when the serving snapshot changes. Bounded;
	// misses simply recompile.
	compileOnce sync.Once
	compiled    *cache.LRU[string, *PreparedQuery]

	// Lazily built monolithic summary over the merged view, for Core().
	// Keyed by the merged catalog (live estimators; a new catalog is
	// materialized per version and per predicate registration) or by the
	// pinned set (snapshots; immutable).
	coreMu  sync.Mutex
	coreKey any
	coreEst *core.Estimator
}

// compiledQueries returns the lazily-initialized compiled-query cache,
// sized by Options.QueryCacheSize (0 means compiledCacheSize).
func (e *Estimator) compiledQueries() *cache.LRU[string, *PreparedQuery] {
	e.compileOnce.Do(func() {
		size := e.opts.QueryCacheSize
		if size <= 0 {
			size = compiledCacheSize
		}
		e.compiled = cache.New[string, *PreparedQuery](size)
	})
	return e.compiled
}

// compiledCacheSize bounds the facade's compiled-query cache.
const compiledCacheSize = 256

// NewEstimator builds the position histograms (and coverage histograms
// for no-overlap predicates) for every registered predicate on every
// shard, and registers the options with the store so future appends
// summarize new shards eagerly (off the estimation path).
//
// Options are validated first (see core.Options.Validate): a negative
// GridSize, BuildWorkers or QueryCacheSize is a configuration error,
// so a daemon booted with bad flags fails here rather than misbehaving
// under load. Zero values select defaults.
func (db *Database) NewEstimator(opts Options) (*Estimator, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.GridSize == 0 {
		opts.GridSize = core.DefaultOptions.GridSize
	}
	if _, err := db.store.EnsureSummaries(opts); err != nil {
		return nil, err
	}
	return &Estimator{db: db, store: db.store, opts: opts}, nil
}

// set returns the shard set this estimator currently serves from.
func (e *Estimator) set() *shard.Set {
	if e.pinned != nil {
		return e.pinned
	}
	return e.store.Current()
}

// Snapshot returns an estimator pinned to the current shard set:
// estimates ignore all later Appends, Drops and Compacts, and stay
// answerable even after the originating shards leave the serving set.
func (e *Estimator) Snapshot() *Estimator {
	return &Estimator{db: e.db, store: e.store, opts: e.opts, pinned: e.set()}
}

// Options returns the estimator's effective options (defaults
// applied). Estimators loaded from a summary blob report the zero
// options: their grid lives inside the blob.
func (e *Estimator) Options() Options { return e.opts }

// ShardCount returns the number of shards in the serving (or pinned)
// set.
func (e *Estimator) ShardCount() int { return e.set().Len() }

// Version returns the version of the shard set the estimator serves
// from.
func (e *Estimator) Version() uint64 { return e.set().Version() }

// Stale reports whether a pinned snapshot has fallen behind the live
// database (live estimators are never stale).
func (e *Estimator) Stale() bool {
	return e.pinned != nil && e.store != nil && e.pinned.Version() != e.store.Version()
}

// Estimate estimates the answer size of a twig pattern, choosing the
// no-overlap algorithm wherever the schema allows and the primitive
// pH-Join elsewhere. Repeated estimates of the same pattern source hit
// a bounded compiled-query cache (see Compile) and skip parsing
// entirely; compiled entries rebind automatically when shards change.
func (e *Estimator) Estimate(patternSrc string) (Result, error) {
	if pq, ok := e.compiledQueries().Get(patternSrc); ok {
		return pq.Estimate()
	}
	pq, err := e.Compile(patternSrc)
	if err != nil {
		return Result{}, err
	}
	e.compiledQueries().Put(patternSrc, pq)
	return pq.Estimate()
}

// BatchResult couples estimates with the single snapshot version they
// were all served from.
type BatchResult struct {
	// Version identifies the shard-set snapshot every result reflects.
	Version uint64
	// Results holds one Result per input pattern, in input order.
	Results []Result
}

// EstimateBatch estimates every pattern against one consistent
// snapshot: the shard set is pinned once, so results are mutually
// consistent even while appends, drops or compactions land
// concurrently — the serving guarantee the daemon's batched /estimate
// endpoint exposes. Patterns share the estimator's compiled-query
// cache. Any invalid pattern fails the whole batch.
func (e *Estimator) EstimateBatch(patterns []string) (BatchResult, error) {
	version, results, err := e.EstimateBatchInto(patterns, nil)
	if err != nil {
		return BatchResult{}, err
	}
	return BatchResult{Version: version, Results: results}, nil
}

// EstimateBatchInto is EstimateBatch reusing the caller's result slice
// (appending from dst[:0]; pass nil to allocate), the allocation-free
// form the daemon's pooled request scratch uses. Every pattern binds to
// the same pinned snapshot and merged-serving epoch, so the whole batch
// shares one bound plan per pattern and the results are mutually
// consistent; repeated batches of hot patterns do no per-call
// allocation at all.
func (e *Estimator) EstimateBatchInto(patterns []string, dst []Result) (version uint64, results []Result, err error) {
	set := e.set()
	results = dst[:0]
	cq := e.compiledQueries()
	for _, src := range patterns {
		pq, cached := cq.Get(src)
		if !cached {
			p, err := pattern.Parse(src)
			if err != nil {
				return 0, nil, err
			}
			pq = &PreparedQuery{est: e, p: p, src: src}
		}
		b, err := pq.bindingFor(set)
		if err != nil {
			return 0, nil, err
		}
		res, err := b.Estimate()
		if err != nil {
			return 0, nil, err
		}
		results = append(results, res)
		if !cached {
			cq.Put(src, pq)
		}
	}
	return set.Version(), results, nil
}

// ShadowCount computes the exact answer size of a pattern against the
// estimator's serving (or pinned) set within a wall-clock budget — the
// shadow-execution entry point of the online accuracy monitor. Call on
// a Snapshot so the count reflects the same shard set the estimate
// came from. Errors classify through errors.Is: exec.ErrDeadline
// (which wraps context.DeadlineExceeded) for a blown budget, and
// accuracy.ErrUnverifiable when the set holds summary-only shards (no
// documents to verify against). The zero deadline disables the budget.
func (e *Estimator) ShadowCount(patternSrc string, deadline time.Time) (float64, error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return 0, err
	}
	n, err := e.set().CountBudget(p, e.opts, deadline)
	if errors.Is(err, shard.ErrSummaryOnly) {
		return 0, fmt.Errorf("%w: %w", accuracy.ErrUnverifiable, err)
	}
	return n, err
}

// Stats returns corpus statistics for the estimator's serving (or
// pinned) set.
func (e *Estimator) Stats() DatabaseStats { return statsOf(e.set()) }

// MergedInfo describes the merged-serving state of a shard store: the
// store background-folds every live shard summary into one frozen
// monolithic view (exact with respect to the fan-out sum; see
// shard.Store and DESIGN.md "Execution engine"), so hot estimates on a
// fresh fold cost O(1) shards.
type MergedInfo = shard.MergedInfo

// MergedInfo reports merged-serving state for the estimator's serving
// (or pinned) set; ok is false for estimators loaded from a summary
// blob, which have no store to fold.
func (e *Estimator) MergedInfo() (info MergedInfo, ok bool) {
	if e.store == nil {
		return MergedInfo{}, false
	}
	return e.store.MergedInfo(e.set(), e.opts), true
}

// MergeSummaries folds the current shard set into the merged serving
// view synchronously, for every option set in active use. The fold
// normally chases mutations in the background; the synchronous form
// gives tests, benchmarks and batch tools a deterministic way to reach
// the O(1)-shard serving state.
func (db *Database) MergeSummaries() { db.store.MergeNow() }

// Shards lists the shards of the serving (or pinned) set.
func (e *Estimator) Shards() []ShardInfo {
	shs := e.set().Shards()
	out := make([]ShardInfo, len(shs))
	for i, sh := range shs {
		out[i] = shardInfo(sh)
	}
	return out
}

// Compile parses and prepares a twig pattern once: predicate references
// are resolved eagerly against the current shard set (a name unknown to
// every shard fails here), and the compiled query caches its per-shard
// folded join results, so Estimate on a PreparedQuery costs histogram
// arithmetic only. Use Compile for hot query paths that bypass the
// facade's internal cache, or to surface pattern errors early.
func (e *Estimator) Compile(patternSrc string) (*PreparedQuery, error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return nil, err
	}
	pq := &PreparedQuery{est: e, p: p, src: patternSrc}
	if _, err := pq.bindingFor(e.set()); err != nil {
		return nil, err
	}
	return pq, nil
}

// PreparedQuery is a compiled twig query bound to an Estimator. It is
// safe for concurrent use; when the estimator's shard set changes, the
// query transparently rebinds to the new set on its next call.
type PreparedQuery struct {
	est *Estimator
	p   *pattern.Pattern
	src string

	binding atomic.Pointer[shard.Prepared]
}

// Source returns the pattern source the query was compiled from.
func (pq *PreparedQuery) Source() string { return pq.src }

// bindingFor returns the prepared per-unit queries for the given set,
// rebinding if the cached binding belongs to another set or if the
// store's merged-serving epoch moved (a background fold completed, so
// a fresher O(1)-shard plan is available without any set swap).
func (pq *PreparedQuery) bindingFor(set *shard.Set) (*shard.Prepared, error) {
	st := pq.est.store
	if b := pq.binding.Load(); b != nil && b.Set() == set && (st == nil || b.Epoch() == st.MergeEpoch()) {
		return b, nil
	}
	var b *shard.Prepared
	var err error
	if st != nil {
		b, err = st.PrepareSet(set, pq.p, pq.est.opts)
	} else {
		b, err = set.Prepare(pq.p, pq.est.opts)
	}
	if err != nil {
		return nil, err
	}
	pq.binding.Store(b)
	return b, nil
}

// Estimate returns the estimated answer size of the compiled twig
// against the estimator's current shard set.
func (pq *PreparedQuery) Estimate() (Result, error) {
	b, err := pq.bindingFor(pq.est.set())
	if err != nil {
		return Result{}, err
	}
	return b.Estimate()
}

// EstimatePrimitive forces the primitive (overlap) algorithm for a
// two-node pattern — the "Overlap Estimate" column of the paper's
// tables.
func (e *Estimator) EstimatePrimitive(patternSrc string) (Result, error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return Result{}, err
	}
	nodes := p.Nodes()
	if len(nodes) != 2 {
		return Result{}, fmt.Errorf("xmlest: EstimatePrimitive requires a two-node pattern, got %d nodes", len(nodes))
	}
	return e.set().EstimatePairPrimitive(nodes[0].PredName(), nodes[1].PredName(), e.opts)
}

// Core exposes a monolithic core estimator for advanced use (query
// planners needing sub-pattern estimates). With a single shard it is
// that shard's own summary — the exact estimator Estimate consults.
// With multiple shards it is a summary built over the merged mega-tree
// view of the estimator's own shard set — a pinned snapshot merges its
// pinned shards, not the live database. Estimators loaded from a
// multi-shard blob (and snapshots holding only summary-only shards)
// have no documents to merge and return nil.
func (e *Estimator) Core() *core.Estimator {
	set := e.set()
	if set.Len() == 1 {
		est, err := set.Shards()[0].Summary(e.opts)
		if err != nil {
			return nil
		}
		return est
	}
	if e.pinned != nil {
		return e.coreFor(set, func() *predicate.Catalog {
			if e.store == nil {
				return nil
			}
			var trees []*xmltree.Tree
			for _, sh := range set.Shards() {
				if !sh.SummaryOnly() {
					trees = append(trees, sh.Tree())
				}
			}
			if len(trees) == 0 {
				return nil
			}
			return e.store.Spec().Build(xmltree.Merge(trees...))
		})
	}
	if e.db == nil {
		return nil
	}
	// Live estimator: the merged catalog is the cache key — a fresh one
	// is materialized per store version and per predicate registration,
	// so staleness on either axis forces a rebuild.
	_, cat := e.db.mergedView()
	return e.coreFor(cat, func() *predicate.Catalog { return cat })
}

// coreFor returns the cached monolithic summary for the given cache
// key, building it from the catalog the supplier materializes.
func (e *Estimator) coreFor(key any, catFn func() *predicate.Catalog) *core.Estimator {
	e.coreMu.Lock()
	defer e.coreMu.Unlock()
	if e.coreEst != nil && e.coreKey == key {
		return e.coreEst
	}
	cat := catFn()
	if cat == nil {
		return nil
	}
	est, err := core.NewEstimator(cat, e.opts)
	if err != nil {
		return nil
	}
	e.coreEst, e.coreKey = est, key
	return est
}

// StorageBytes reports the total compact-encoding size of all summary
// structures across shards — the paper's storage metric.
func (e *Estimator) StorageBytes() int {
	n, err := e.set().StorageBytes(e.opts)
	if err != nil {
		return 0
	}
	return n
}

// MarshalBinary serializes every summary structure, so estimation can
// run later without the data (see LoadEstimator). A single-shard
// estimator writes the monolithic XQS1 summary format; multi-shard
// estimators write the XQS2 shard-set container.
func (e *Estimator) MarshalBinary() ([]byte, error) {
	set := e.set()
	if set.Len() == 1 {
		est, err := set.Shards()[0].Summary(e.opts)
		if err != nil {
			return nil, err
		}
		return est.MarshalBinary()
	}
	return set.Marshal(e.opts)
}

// LoadEstimator reconstructs an estimator from a summary blob produced
// by Estimator.MarshalBinary — either a monolithic XQS1 summary or an
// XQS2 shard-set container. The loaded estimator answers every
// estimation query; exact counting requires the original Database.
func LoadEstimator(blob []byte) (*Estimator, error) {
	if core.IsShardSetBlob(blob) {
		set, err := shard.LoadSet(blob)
		if err != nil {
			return nil, err
		}
		return &Estimator{pinned: set}, nil
	}
	inner, err := core.UnmarshalEstimator(blob)
	if err != nil {
		return nil, err
	}
	return &Estimator{pinned: shard.SetFromSummaries(core.ShardSummary{ID: 1, Est: inner})}, nil
}

// Find enumerates up to limit concrete matches of a twig pattern
// (limit <= 0 enumerates all). Each match lists the data node assigned
// to each pattern node in pattern pre-order, with node ids into
// Tree()'s merged view. Combined with Estimator.Estimate, this models
// the paper's online-query scenario: show the first page of results
// together with a predicted total.
func (db *Database) Find(patternSrc string, limit int) ([]match.Match, error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return nil, err
	}
	tree, cat := db.mergedView()
	return match.FindTwigMatches(tree, p, resolveIn(cat), limit)
}
