package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xmlest/internal/core"
	"xmlest/internal/match"
	"xmlest/internal/pattern"
	"xmlest/internal/planner"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

func setup(t *testing.T, tr *xmltree.Tree, gridSize int) (*core.Estimator, match.Resolver) {
	t.Helper()
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	est, err := core.NewEstimator(cat, core.Options{GridSize: gridSize})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	resolve := func(name string) ([]xmltree.NodeID, error) {
		e, err := cat.Get(name)
		if err != nil {
			return nil, err
		}
		return e.Nodes, nil
	}
	return est, resolve
}

func TestExecuteFig2AllPlans(t *testing.T) {
	tr := xmltree.Fig1Document()
	est, resolve := setup(t, tr, 4)
	p := pattern.MustParse("//department//faculty[.//TA][.//RA]")
	plans, err := planner.Enumerate(est, p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	want, err := match.CountTwig(tr, p, resolve)
	if err != nil {
		t.Fatalf("CountTwig: %v", err)
	}
	for i, plan := range plans {
		stats, err := Execute(tr, p, plan, resolve)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		if float64(stats.Results) != want {
			t.Errorf("plan %d (%s): results = %d, want %v", i, plan, stats.Results, want)
		}
		if len(stats.StepActual) != len(plan.Steps) {
			t.Errorf("plan %d: step stats = %d, want %d", i, len(stats.StepActual), len(plan.Steps))
		}
	}
}

func TestExecuteStepActualsMatchInducedCounts(t *testing.T) {
	// Each step's actual intermediate size must equal the exact match
	// count of the induced sub-twig — the quantity the plan estimates.
	tr := xmltree.Fig1Document()
	est, resolve := setup(t, tr, 4)
	p := pattern.MustParse("//department//faculty//TA")
	plans, err := planner.Enumerate(est, p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	for _, plan := range plans {
		stats, err := Execute(tr, p, plan, resolve)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		// Final step: full pattern count.
		full, _ := match.CountTwig(tr, p, resolve)
		if float64(stats.StepActual[len(stats.StepActual)-1]) != full {
			t.Errorf("plan %s: final actual %d != full count %v",
				plan, stats.StepActual[len(stats.StepActual)-1], full)
		}
		// First step: base predicate cardinality.
		first, err := resolve(plan.Steps[0].Added.PredName())
		if err != nil {
			t.Fatal(err)
		}
		if int(stats.StepActual[0]) != len(first) {
			t.Errorf("plan %s: scan actual %d != list size %d", plan, stats.StepActual[0], len(first))
		}
	}
}

func TestExecutePropertyMatchesCountTwig(t *testing.T) {
	patterns := []string{"//a//b", "//a//b//c", "//a[.//b]//c", "//a/b", "//b//b//a"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 4+r.Intn(60))
		cat := predicate.NewCatalog(tr)
		cat.AddAllTags()
		g := 4
		if g > tr.MaxPos {
			g = 1
		}
		est, err := core.NewEstimator(cat, core.Options{GridSize: g})
		if err != nil {
			t.Logf("estimator: %v", err)
			return false
		}
		resolve := func(name string) ([]xmltree.NodeID, error) {
			e, err := cat.Get(name)
			if err != nil {
				return nil, err
			}
			return e.Nodes, nil
		}
		for _, src := range patterns {
			p := pattern.MustParse(src)
			want, err := match.CountTwig(tr, p, resolve)
			if err != nil {
				continue // tag absent from this random tree
			}
			plans, err := planner.Enumerate(est, p)
			if err != nil {
				continue
			}
			// Execute the best and the worst plan; both must agree.
			for _, plan := range []*planner.Plan{plans[0], plans[len(plans)-1]} {
				stats, err := Execute(tr, p, plan, resolve)
				if err != nil {
					t.Logf("seed %d %s: %v", seed, src, err)
					return false
				}
				if float64(stats.Results) != want {
					t.Logf("seed %d %s plan %s: got %d want %v", seed, src, plan, stats.Results, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomTree(r *rand.Rand, n int) *xmltree.Tree {
	b := xmltree.NewBuilder()
	tags := []string{"a", "b", "c"}
	open := 0
	for i := 0; i < n; i++ {
		if open > 0 && r.Intn(3) == 0 {
			b.End()
			open--
		}
		b.Begin(tags[r.Intn(len(tags))])
		open++
	}
	return b.Tree()
}

func TestExecuteChildAxisUpward(t *testing.T) {
	// A plan that binds the child first forces the upward child-axis
	// path (parent lookup).
	tr := xmltree.Fig1Document()
	est, resolve := setup(t, tr, 4)
	p := pattern.MustParse("//faculty/TA")
	plans, err := planner.Enumerate(est, p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	var upwardPlan *planner.Plan
	for _, plan := range plans {
		if plan.Steps[0].Added.Test == "TA" {
			upwardPlan = plan
		}
	}
	if upwardPlan == nil {
		t.Fatalf("no TA-first plan enumerated")
	}
	stats, err := Execute(tr, p, upwardPlan, resolve)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if stats.Results != 2 {
		t.Errorf("results = %d, want 2", stats.Results)
	}
}

func TestScanOperator(t *testing.T) {
	tr := xmltree.Fig1Document()
	s := NewScan(tr.NodesWithTag("faculty"))
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 3 || s.Emitted() != 3 {
		t.Errorf("scan emitted %d/%d, want 3", n, s.Emitted())
	}
	// Re-open resets.
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	if s.Emitted() != 0 {
		t.Errorf("Emitted after re-open = %d, want 0", s.Emitted())
	}
}

func TestExecuteErrors(t *testing.T) {
	tr := xmltree.Fig1Document()
	_, resolve := setup(t, tr, 4)
	p := pattern.MustParse("//faculty//TA")
	if _, err := Execute(tr, p, &planner.Plan{}, resolve); err == nil {
		t.Errorf("empty plan: want error")
	}
}

func TestTotalIntermediate(t *testing.T) {
	s := &Stats{StepActual: []int64{10, 50, 3}}
	if got := s.TotalIntermediate(); got != 50 {
		t.Errorf("TotalIntermediate = %d, want 50 (excludes scan and final)", got)
	}
}
