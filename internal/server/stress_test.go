package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"xmlest"
)

// TestConcurrentServingConsistency hammers /estimate, /append and
// /compact concurrently (run under -race) and asserts the serving
// contract: every response is computed against one consistent
// snapshot — a pattern repeated within a batch returns identical
// estimates, versions never run backwards for any client, and an
// append's documents are visible to every later estimate.
func TestConcurrentServingConsistency(t *testing.T) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	s, err := New(db, Config{Options: xmlest.Options{GridSize: 4}, Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		estimators = 4
		appenders  = 2
		iterations = 40
	)

	var wg sync.WaitGroup
	errCh := make(chan error, estimators+appenders+1)
	fail := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}

	post := func(path, contentType, body string) (*http.Response, error) {
		return http.Post(ts.URL+path, contentType, strings.NewReader(body))
	}
	estimate := func(patterns []string) (EstimateResponse, bool) {
		enc, _ := json.Marshal(EstimateRequest{Patterns: patterns})
		resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(enc))
		if err != nil {
			fail("estimate: %v", err)
			return EstimateResponse{}, false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			fail("estimate: HTTP %d: %s", resp.StatusCode, body)
			return EstimateResponse{}, false
		}
		var er EstimateResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			fail("estimate decode: %v", err)
			return EstimateResponse{}, false
		}
		return er, true
	}

	// Estimate workers issue batches with a deliberately repeated
	// pattern: under concurrent appends, only snapshot-consistent
	// serving keeps the duplicates identical.
	batch := []string{"//faculty//TA", "//department//faculty", "//faculty//TA"}
	for w := 0; w < estimators; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for i := 0; i < iterations; i++ {
				er, ok := estimate(batch)
				if !ok {
					return
				}
				if er.Results[0].Estimate != er.Results[2].Estimate {
					fail("batch not snapshot-consistent: %v != %v (version %d)",
						er.Results[0].Estimate, er.Results[2].Estimate, er.Version)
					return
				}
				if er.Version < lastVersion {
					fail("version ran backwards: %d after %d", er.Version, lastVersion)
					return
				}
				lastVersion = er.Version
			}
		}()
	}

	// Append workers land documents and verify visibility: their next
	// estimate must serve from a snapshot at or past the append's.
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				resp, err := post("/append", "application/xml", dept2)
				if err != nil {
					fail("append: %v", err)
					return
				}
				if resp.StatusCode == http.StatusServiceUnavailable {
					// Backpressure is a valid answer under load.
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					continue
				}
				var ar AppendResponse
				err = json.NewDecoder(resp.Body).Decode(&ar)
				resp.Body.Close()
				if err != nil {
					fail("append decode: %v", err)
					return
				}
				er, ok := estimate([]string{"//faculty//TA"})
				if !ok {
					return
				}
				if er.Version < ar.Version {
					fail("append-to-visible violated: estimate version %d < append version %d",
						er.Version, ar.Version)
					return
				}
			}
		}()
	}

	// One compactor churns the shard set underneath everyone.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iterations/2; i++ {
			resp, err := post("/compact", "application/json", "{}")
			if err != nil {
				fail("compact: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fail("compact: HTTP %d", resp.StatusCode)
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Everything the appenders landed is still answerable, exactly.
	st, _ := estimateStats(t, ts.URL)
	if st.Corpus.Docs < 1 {
		t.Fatalf("corpus lost documents: %+v", st.Corpus)
	}
}

// estimateStats fetches /stats.
func estimateStats(t *testing.T, base string) (StatsResponse, bool) {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st, true
}
