package core

// Baselines the paper's evaluation tables compare against.

// NaiveEstimate is the "(very) naive" estimate of Section 5.1: the
// product of the node counts of the pattern's predicates, ignoring all
// structural information. For a two-node pattern this is
// count(P1) × count(P2), the first estimation column of Tables 2 and 4.
func NaiveEstimate(counts ...int) float64 {
	est := 1.0
	for _, c := range counts {
		est *= float64(c)
	}
	return est
}

// SchemaUpperBound is the schema-only estimate of Section 5.1 for a
// two-node pattern whose ancestor predicate has the no-overlap
// property: each descendant joins at most one ancestor, so the answer
// size is bounded by the descendant count (the "Desc Num" column of
// Table 2). It returns ok=false when the ancestor may overlap, in which
// case the schema alone gives no useful bound.
func SchemaUpperBound(ancNoOverlap bool, descCount int) (bound float64, ok bool) {
	if !ancNoOverlap {
		return 0, false
	}
	return float64(descCount), true
}
