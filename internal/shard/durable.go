package shard

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xmlest/internal/core"
	"xmlest/internal/fsio"
	"xmlest/internal/manifest"
	"xmlest/internal/metrics"
	"xmlest/internal/predicate"
	"xmlest/internal/trace"
	"xmlest/internal/wal"
	"xmlest/internal/xmltree"
)

// Data-directory layout:
//
//	<dir>/MANIFEST.json   the checkpoint catalog (internal/manifest)
//	<dir>/shards/*.xqs    checkpointed XQS1 shard summaries
//	<dir>/wal/*.wal       write-ahead-log segments (internal/wal)
const (
	// WALDir is the write-ahead-log subdirectory of a data directory.
	WALDir = "wal"
	// ShardDir is the checkpointed-summaries subdirectory.
	ShardDir = "shards"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// DurableConfig tunes a durable store.
type DurableConfig struct {
	// Options shape the summaries checkpoints persist. GridSize is
	// pinned in the manifest: reopening a data directory with a
	// different grid is an error, because checkpointed summaries are
	// served as-is and cannot be rebuilt from documents they no longer
	// have.
	Options core.Options

	// WAL tunes the write-ahead log: fsync policy and segment size.
	WAL wal.Options

	// Commit tunes the group-commit layer: the MaxDelay latency budget
	// and the per-group byte cap. The zero value groups naturally (no
	// added latency) — see wal.CommitterOptions.
	//
	// The store spends MaxDelay at the INGEST stage, not the WAL
	// stage: waiting for stragglers before the parse + summary build
	// amortizes the build, the shard install, and the fsync all at
	// once, where a post-build wait could only amortize the fsync.
	// The wal.Committer therefore runs with no delay of its own.
	Commit wal.CommitterOptions

	// IngestWorkers bounds concurrent parse + summary-build work — the
	// CPU stage of the append pipeline, which runs outside every lock.
	// <= 0 means GOMAXPROCS.
	IngestWorkers int

	// FS is the filesystem the store (manifest, checkpoints, and —
	// unless WAL.FS overrides it — the WAL) runs on; nil means the real
	// one. Fault-injection tests substitute an fsio.FaultFS.
	FS fsio.FS
}

// DegradedError marks a mutation refused, or failed, because a storage
// component is in a failed state. Component is "wal" (sealed log —
// permanent until restart) or "checkpoint" (last checkpoint failed —
// clears when one succeeds); reads are unaffected either way.
type DegradedError struct {
	Component string
	Err       error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("shard: %s degraded: %v", e.Component, e.Err)
}

func (e *DegradedError) Unwrap() error { return e.Err }

// RecoveryInfo describes one boot-time recovery.
type RecoveryInfo struct {
	// CheckpointShards counts shards loaded from the manifest;
	// CheckpointVersion is the manifest's pinned version.
	CheckpointShards  int    `json:"checkpoint_shards"`
	CheckpointVersion uint64 `json:"checkpoint_version"`
	// ReplayedRecords and ReplayedDocs count the WAL tail replayed on
	// top of the checkpoint.
	ReplayedRecords int `json:"replayed_records"`
	ReplayedDocs    int `json:"replayed_docs"`
	// SkippedRecords counts CRC-valid records whose documents failed to
	// parse — batches the original process rejected before
	// acknowledging, skipped identically here.
	SkippedRecords int `json:"skipped_records"`
}

// DurabilityStats is the durable layer's introspection surface (the
// daemon's /stats "durability" section).
type DurabilityStats struct {
	Dir   string `json:"dir"`
	Fsync string `json:"fsync"`
	// WALSegments/WALBytes size the live log; LastSeq is the newest
	// appended record and DurableSeq the newest known fsynced.
	WALSegments int    `json:"wal_segments"`
	WALBytes    int64  `json:"wal_bytes"`
	LastSeq     uint64 `json:"last_seq"`
	DurableSeq  uint64 `json:"durable_seq"`
	// CheckpointVersion/CheckpointWALSeq describe the newest manifest;
	// Checkpoints counts checkpoints taken by this process.
	CheckpointVersion uint64 `json:"checkpoint_version"`
	CheckpointWALSeq  uint64 `json:"checkpoint_wal_seq"`
	Checkpoints       uint64 `json:"checkpoints"`
	// CheckpointFailures counts checkpoint attempts that failed; the
	// checkpoint loop retries with backoff, so a transient disk error
	// shows up here without degrading appends.
	CheckpointFailures uint64 `json:"checkpoint_failures,omitempty"`
	// Degraded reports a failed storage component: DegradedComponent is
	// "wal" (log sealed; appends refused until restart) or "checkpoint"
	// (last checkpoint failed; clears on the next success), with
	// DegradedReason the underlying error. Reads serve normally.
	Degraded          bool   `json:"degraded,omitempty"`
	DegradedComponent string `json:"degraded_component,omitempty"`
	DegradedReason    string `json:"degraded_reason,omitempty"`
	// GroupCommit is the write-path observability section.
	GroupCommit GroupCommitStats `json:"group_commit"`
	// Recovery echoes the boot-time replay.
	Recovery RecoveryInfo `json:"recovery"`
}

// GroupCommitStats digests the group-commit write path: how well
// concurrent appends amortize fsyncs, and how long batches wait in the
// commit queue.
type GroupCommitStats struct {
	// Groups counts committed groups; Batches counts the appends across
	// them — Batches/Groups is the lifetime mean group size.
	Groups  uint64 `json:"groups"`
	Batches uint64 `json:"batches"`
	// GroupSize digests per-group batch counts (p50/p95/max).
	GroupSize metrics.ValueSummary `json:"group_size"`
	// Fsyncs counts data fsyncs since open; FsyncsPerSec is the
	// lifetime rate.
	Fsyncs       uint64  `json:"fsyncs"`
	FsyncsPerSec float64 `json:"fsyncs_per_sec"`
	// QueueWait digests the time batches spend between submission and
	// group formation — the latency cost of grouping.
	QueueWait metrics.LatencySummary `json:"queue_wait"`
}

// DurableStore wraps a Store with LSM-style durability: every append
// is written (and fsynced, per policy) to a write-ahead log at the
// exact version it installs at, checkpoints persist the serving set's
// summaries behind an atomically-renamed manifest and truncate the
// covered log prefix, and OpenDurable replays manifest + WAL tail so
// a restart serves every acknowledged batch at a version no lower
// than the client observed.
type DurableStore struct {
	store   *Store
	log     *wal.Log
	dir     string
	fs      fsio.FS
	opts    core.Options
	walMode wal.Mode

	// cpMu serializes checkpoints (and the drop+checkpoint pair). The
	// files map — shard id to its persisted checkpoint entry, so
	// unchanged shards are never rewritten — is populated at boot and
	// then only touched under cpMu.
	cpMu  sync.Mutex
	files map[uint64]manifest.Shard

	recovery    RecoveryInfo
	checkpoints atomic.Uint64
	cpVersion   atomic.Uint64
	cpSeq       atomic.Uint64

	// cpErr is the last checkpoint failure (nil after a success): the
	// transient half of the degraded surface. The permanent half — a
	// sealed WAL — lives in the log itself (wal.Log.Err).
	cpErr      atomic.Pointer[string]
	cpFailures atomic.Uint64

	// Group-commit write pipeline: the ingest coalescer drains every
	// append batch queued behind the CPU stage into ONE parse + summary
	// build (so a burst of concurrent appends lands as one shard with
	// one WAL record instead of N), ingestSem bounds how many such
	// builds run at once (outside all locks), the committer owns the
	// log+install stage, and the histograms feed /stats.
	committer     *wal.Committer
	ingestSem     chan struct{}
	ingestQ       chan *ingestReq
	ingestStop    chan struct{}
	ingestDone    chan struct{}
	ingestCap     int64
	ingestDelay   time.Duration
	submitSlots   chan struct{}
	ingestMu      sync.RWMutex // guards ingestClosed against in-flight AppendDocs
	ingestClosed  bool
	ingestEnq     sync.WaitGroup // AppendDocs calls between closed-check and enqueue
	ingestWorkers sync.WaitGroup // dispatched build goroutines
	groupSizes    *metrics.ValueHistogram
	queueWait     *metrics.LatencyHistogram
	openedAt      time.Time

	// stages records per-stage durations of the append pipeline (queue
	// wait, coalesce wait, parse, build, WAL submit, fsync, install).
	// Appends are millisecond-scale, so every group is recorded — no
	// sampling — at the cost of a few wait-free atomics per group.
	stages *trace.Recorder
}

// ingestReq is one AppendDocs batch waiting for the ingest coalescer;
// res delivers the built (possibly shared) shard and its commit handle,
// or the batch's own parse/build error.
type ingestReq struct {
	docs [][]byte
	at   time.Time
	res  chan ingestRes
}

type ingestRes struct {
	sh  *Shard
	p   *wal.Pending
	err error
}

// Degraded reports the store's failed component, if any: "wal" when
// the log has sealed after an I/O failure (appends are refused until
// the process restarts against a healthy disk), or "checkpoint" when
// the most recent checkpoint attempt failed (appends still work; the
// WAL simply keeps growing until a checkpoint succeeds). Reads are
// never degraded — the serving snapshot lives in memory.
func (d *DurableStore) Degraded() (component, reason string, degraded bool) {
	if err := d.log.Err(); err != nil {
		return "wal", err.Error(), true
	}
	if p := d.cpErr.Load(); p != nil {
		return "checkpoint", *p, true
	}
	return "", "", false
}

// OpenDurable opens a data directory, recovering whatever it holds:
// the manifest's checkpointed shards are loaded summary-only, the WAL
// tail past the manifest's truncation point is replayed as tree-backed
// shards at the versions their appends acknowledged, and the log is
// positioned for new appends.
//
// bootstrap supplies the initial store — predicate vocabulary plus
// seed corpus. It runs on every boot: a fresh directory adopts the
// bootstrapped store outright (its shards become the corpus the first
// checkpoint persists), while a directory with a checkpoint keeps only
// the bootstrapped predicate Spec, since its shards already live in
// the checkpoint. A nil bootstrap starts empty with the all-tags
// vocabulary — the pure-ingest daemon.
func OpenDurable(dir string, bootstrap func() (*Store, error), cfg DurableConfig) (*DurableStore, error) {
	opts := cfg.Options
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.GridSize == 0 {
		opts.GridSize = core.DefaultOptions.GridSize
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = fsio.OS
	}
	if cfg.WAL.FS == nil {
		cfg.WAL.FS = fsys
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: data dir: %w", err)
	}
	man, haveMan, err := manifest.LoadFS(fsys, dir)
	if err != nil {
		// A corrupt manifest is not silently discarded: that would boot
		// an empty database over a directory full of data.
		return nil, err
	}
	if haveMan && man.GridSize != opts.GridSize {
		return nil, fmt.Errorf(
			"shard: data dir %s was checkpointed with grid size %d, reopened with %d; use the original options",
			dir, man.GridSize, opts.GridSize)
	}

	var st *Store
	if bootstrap != nil {
		bs, err := bootstrap()
		if err != nil {
			return nil, fmt.Errorf("shard: bootstrap: %w", err)
		}
		if haveMan {
			// The bootstrap corpus already lives in the checkpoint; keep
			// only its predicate recipe so replayed shards speak the same
			// vocabulary.
			st = NewStore(bs.Spec())
		} else {
			st = bs
		}
	} else {
		st = NewStore(predicate.Spec{AllTags: true})
	}

	d := &DurableStore{
		store:   st,
		dir:     dir,
		fs:      fsys,
		opts:    opts,
		walMode: cfg.WAL.Mode,
		files:   make(map[uint64]manifest.Shard),
	}
	if haveMan {
		for _, entry := range man.Shards {
			est, err := loadShardEntry(fsys, dir, entry)
			if err != nil {
				return nil, err
			}
			sh := &Shard{
				id:       st.nextID.Add(1),
				docs:     entry.Docs,
				nodes:    entry.Nodes,
				prebuilt: est,
				walSeq:   entry.WALSeq,
			}
			d.installRecovered(sh)
			entry.ID = sh.id
			d.files[sh.id] = entry
		}
		st.setMinVersion(man.Version)
		d.recovery.CheckpointShards = len(man.Shards)
		d.recovery.CheckpointVersion = man.Version
		d.cpVersion.Store(man.Version)
		d.cpSeq.Store(man.WALSeq)
	}

	log, err := wal.Open(filepath.Join(dir, WALDir), cfg.WAL)
	if err != nil {
		return nil, err
	}
	d.log = log
	var after uint64
	if haveMan {
		after = man.WALSeq
		// The manifest's truncation point floors the sequence space: if
		// the log directory lost its post-truncation segment (ModeOff
		// skips the dir fsync; a restored backup may omit wal/ entirely),
		// numbering must still resume above every checkpointed record.
		log.SetMinSeq(man.WALSeq)
	}
	if err := log.Replay(after, d.replayRecord); err != nil {
		log.Close()
		return nil, fmt.Errorf("shard: wal replay: %w", err)
	}

	workers := cfg.IngestWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	d.ingestSem = make(chan struct{}, workers)
	depth := cfg.Commit.QueueDepth
	if depth <= 0 {
		depth = wal.DefaultQueueDepth
	}
	d.ingestQ = make(chan *ingestReq, depth)
	d.ingestStop = make(chan struct{})
	d.ingestDone = make(chan struct{})
	d.ingestCap = cfg.Commit.MaxGroupBytes
	if d.ingestCap <= 0 {
		d.ingestCap = wal.DefaultMaxGroupBytes
	}
	// Two in-flight submissions: one group building while the previous
	// one commits (fsync). This is what makes coalescing engage — any
	// batch arriving while both slots are busy queues up and joins the
	// next group, so the number of shards installed per second tracks
	// the commit rate, not the append rate.
	d.submitSlots = make(chan struct{}, 2)
	d.ingestDelay = cfg.Commit.MaxDelay
	d.groupSizes = metrics.NewValueHistogram()
	d.queueWait = metrics.NewLatencyHistogram()
	d.stages = trace.NewRecorder("xqest_append_stage_seconds",
		"Append pipeline stage durations.", trace.AppendStages...)
	d.openedAt = time.Now()
	// The committer starts only after recovery: replay installs shards
	// directly and must not race group formation. The latency budget is
	// spent at the ingest stage (see DurableConfig.Commit), so the
	// committer itself always commits eagerly.
	commitOpts := cfg.Commit
	commitOpts.MaxDelay = 0
	d.committer = wal.NewCommitter(log, commitOpts, d.commitGroup)
	go d.ingestLoop()
	return d, nil
}

// replayRecord rebuilds one logged batch during recovery, landing it
// at the version its append acknowledged.
func (d *DurableStore) replayRecord(rec wal.Record) error {
	readers := make([]io.Reader, len(rec.Docs))
	for i, doc := range rec.Docs {
		readers[i] = bytes.NewReader(doc)
	}
	tree, err := xmltree.ParseCollection(readers, xmltree.DefaultParseOptions)
	if err != nil || tree.NumNodes() == 0 {
		// The record is CRC-valid, so these are the exact bytes the
		// original process saw — and parsing is deterministic, so it
		// rejected (and never acknowledged) this batch too. Skip it the
		// same way.
		d.recovery.SkippedRecords++
		return nil
	}
	cat := d.store.Spec().Build(tree)
	sh, err := d.store.newShard(tree, cat)
	if err != nil {
		return err
	}
	sh.walSeq = rec.Seq
	if rec.Version > 1 {
		d.store.setMinVersion(rec.Version - 1)
	}
	d.installRecovered(sh)
	d.recovery.ReplayedRecords++
	d.recovery.ReplayedDocs += len(rec.Docs)
	return nil
}

// installRecovered appends a recovered shard to the serving set
// (recovery is single-threaded; the lock is for form).
func (d *DurableStore) installRecovered(sh *Shard) {
	d.store.writeMu.Lock()
	defer d.store.writeMu.Unlock()
	d.store.appendLocked(sh)
}

// loadShardEntry reads and verifies one checkpointed summary.
func loadShardEntry(fsys fsio.FS, dir string, entry manifest.Shard) (*core.Estimator, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, entry.File))
	if err != nil {
		return nil, fmt.Errorf("shard: checkpoint %s: %w", entry.File, err)
	}
	if int64(len(data)) != entry.Bytes {
		return nil, fmt.Errorf("shard: checkpoint %s: %d bytes, manifest says %d (corrupt data directory)",
			entry.File, len(data), entry.Bytes)
	}
	if crc32.Checksum(data, crcTable) != entry.CRC32 {
		return nil, fmt.Errorf("shard: checkpoint %s: checksum mismatch (corrupt data directory)", entry.File)
	}
	est, err := core.UnmarshalEstimator(data)
	if err != nil {
		return nil, fmt.Errorf("shard: checkpoint %s: %w", entry.File, err)
	}
	return est, nil
}

// Store returns the wrapped serving store. Reads (Current, estimation)
// go straight to it; mutations that must be durable go through the
// DurableStore.
func (d *DurableStore) Store() *Store { return d.store }

// Recovery reports what boot-time recovery rebuilt.
func (d *DurableStore) Recovery() RecoveryInfo { return d.recovery }

// GridSize returns the grid size pinned in the data directory's
// manifest.
func (d *DurableStore) GridSize() int { return d.opts.GridSize }

// DurableSeq returns the newest WAL sequence known fsynced.
func (d *DurableStore) DurableSeq() uint64 { return d.log.DurableSeq() }

// AppendDocs durably lands one batch of raw XML documents. It is a
// three-stage pipeline:
//
//  1. Coalesce: the batch queues behind the CPU stage; the ingest
//     coalescer drains everything waiting into ONE parse + summary
//     build, so a burst of N concurrent appends costs one build, one
//     shard install, and one WAL record instead of N. A lone append
//     coalesces with nothing and behaves exactly as before.
//  2. CPU stage, outside every lock, bounded by IngestWorkers: parse
//     the (possibly merged) documents and build the shard's summaries.
//  3. Commit stage, via the group committer: the submission joins
//     whatever group is forming; the commit callback takes the write
//     lock once per GROUP, logs every submission with one segment
//     write + one fsync (always policy), installs every shard, and
//     wakes the waiters with their exact seq and ack version.
//
// Batches merged into one build share a shard, a WAL record, a seq and
// an ack version — and therefore an all-or-nothing fate, the same
// contract a commit group already has. Recovery replays the merged
// record into the identical merged shard, so estimates stay
// bit-identical to the uncrashed process.
//
// An error means nothing was acknowledged or installed — a failed
// group write or fsync refuses the whole group.
func (d *DurableStore) AppendDocs(docs [][]byte) (*Shard, uint64, error) {
	if len(docs) == 0 {
		return nil, 0, fmt.Errorf("shard: refusing to append an empty batch")
	}
	if err := d.log.Err(); err != nil {
		// The log sealed on an earlier I/O failure; fail before doing
		// any parse work.
		return nil, 0, &DegradedError{Component: "wal", Err: err}
	}
	d.ingestMu.RLock()
	if d.ingestClosed {
		d.ingestMu.RUnlock()
		return nil, 0, fmt.Errorf("shard: store is closed")
	}
	d.ingestEnq.Add(1)
	d.ingestMu.RUnlock()
	r := &ingestReq{docs: docs, at: time.Now(), res: make(chan ingestRes, 1)}
	d.ingestQ <- r
	d.ingestEnq.Done()
	res := <-r.res
	if res.err != nil {
		return nil, 0, res.err
	}
	if _, _, err := res.p.Wait(); err != nil {
		if d.log.Err() != nil {
			return nil, 0, &DegradedError{Component: "wal", Err: err}
		}
		return nil, 0, err
	}
	return res.sh, res.sh.walSeq, nil
}

// ingestLoop is the coalescer goroutine: it blocks for the first batch,
// waits for a build slot, and only THEN drains everything else queued
// into the group — group formation happens as late as possible, so
// every batch that arrived while earlier builds held the pool joins
// this group instead of becoming a premature singleton. The dispatched
// build runs on its own goroutine, so the loop immediately waits for
// the next batch and builds overlap the previous group's fsync.
func (d *DurableStore) ingestLoop() {
	defer close(d.ingestDone)
	for {
		select {
		case <-d.ingestStop:
			for {
				select {
				case r := <-d.ingestQ:
					d.dispatchIngest(r)
				default:
					d.ingestWorkers.Wait()
					return
				}
			}
		case r := <-d.ingestQ:
			d.dispatchIngest(r)
		}
	}
}

// formIngestGroup greedily drains the ingest queue behind first, up to
// the group byte budget. With no latency budget a group is whatever
// queued while earlier builds and commits were in flight; with one
// (DurableConfig.Commit.MaxDelay), the coalescer then waits out the
// budget for stragglers — fewer, larger shards per second at the cost
// of that much ack latency.
func (d *DurableStore) formIngestGroup(first *ingestReq) []*ingestReq {
	group := append(make([]*ingestReq, 0, 8), first)
	var bytes int64
	for _, doc := range first.docs {
		bytes += int64(len(doc))
	}
greedy:
	for bytes < d.ingestCap {
		select {
		case r := <-d.ingestQ:
			group = append(group, r)
			for _, doc := range r.docs {
				bytes += int64(len(doc))
			}
		default:
			break greedy
		}
	}
	if d.ingestDelay > 0 {
		t := time.NewTimer(d.ingestDelay)
		defer t.Stop()
	budget:
		for bytes < d.ingestCap {
			select {
			case r := <-d.ingestQ:
				group = append(group, r)
				for _, doc := range r.docs {
					bytes += int64(len(doc))
				}
			case <-t.C:
				break budget
			case <-d.ingestStop:
				// Shutdown: build what we have; the drain handles the rest.
				break budget
			}
		}
	}
	return group
}

// dispatchIngest waits for a submission slot and a build slot, forms
// the group at the last possible moment (everything that queued while
// the slots were busy joins), and runs the merged build on the pool.
// Blocking here, on the coalescer goroutine, is what creates the
// coalescing pressure: while one group builds and another commits,
// arrivals queue and join the next, larger group. The submission slot
// is held until the group's commit resolves, so the install rate —
// and with it the serving set's shard count — tracks the commit
// cycle, not the raw append rate.
func (d *DurableStore) dispatchIngest(first *ingestReq) {
	d.submitSlots <- struct{}{}
	d.ingestSem <- struct{}{}
	dispatched := time.Now()
	d.stages.Observe(trace.StageQueueWait, dispatched.Sub(first.at))
	group := d.formIngestGroup(first)
	d.stages.Observe(trace.StageCoalesceWait, time.Since(dispatched))
	d.ingestWorkers.Add(1)
	go func() {
		p := d.ingestGroup(group)
		<-d.ingestSem
		if p != nil {
			p.Wait()
		}
		<-d.submitSlots
		d.ingestWorkers.Done()
	}()
}

// ingestGroup builds one shard from every batch in the group and
// submits it for commit, returning the pending submission (the
// dispatcher holds its slot until it resolves). If the merged parse
// fails — one poisoned batch must not refuse its neighbors — each
// batch falls back to its own build and submission, so exactly the
// malformed batches fail; the fallback returns nil (its submissions
// resolve on their own).
func (d *DurableStore) ingestGroup(group []*ingestReq) *wal.Pending {
	if len(group) == 1 {
		return d.buildAndSubmit(group[0])
	}
	var docs [][]byte
	members := make([]time.Time, len(group))
	for i, r := range group {
		docs = append(docs, r.docs...)
		members[i] = r.at
	}
	sh, err := d.buildShard(docs)
	if err != nil {
		for _, r := range group {
			d.buildAndSubmit(r)
		}
		return nil
	}
	p, err := d.committer.SubmitCoalesced(docs, sh, members)
	for _, r := range group {
		r.res <- ingestRes{sh: sh, p: p, err: err}
	}
	if err != nil {
		return nil
	}
	return p
}

// buildAndSubmit is the uncoalesced path: one batch, its own shard and
// WAL record.
func (d *DurableStore) buildAndSubmit(r *ingestReq) *wal.Pending {
	sh, err := d.buildShard(r.docs)
	if err != nil {
		r.res <- ingestRes{err: err}
		return nil
	}
	p, err := d.committer.SubmitCoalesced(r.docs, sh, []time.Time{r.at})
	r.res <- ingestRes{sh: sh, p: p, err: err}
	if err != nil {
		return nil
	}
	return p
}

// buildShard is the append pipeline's CPU stage: parse + summary
// build, no locks held. Concurrency is bounded by the dispatch
// semaphore, not here.
func (d *DurableStore) buildShard(docs [][]byte) (*Shard, error) {
	readers := make([]io.Reader, len(docs))
	for i, doc := range docs {
		readers[i] = bytes.NewReader(doc)
	}
	start := time.Now()
	tree, err := xmltree.ParseCollection(readers, xmltree.DefaultParseOptions)
	if err != nil {
		return nil, err
	}
	if tree.NumNodes() == 0 {
		return nil, fmt.Errorf("shard: refusing to append an empty tree")
	}
	parsed := time.Now()
	d.stages.Observe(trace.StageParse, parsed.Sub(start))
	cat := d.store.Spec().Build(tree)
	sh, err := d.store.newShard(tree, cat)
	if err == nil {
		d.stages.Observe(trace.StageBuild, time.Since(parsed))
	}
	return sh, err
}

// commitGroup is the commit callback the committer runs once per
// formed group, on its own goroutine. It holds the store's write lock
// across the whole group so the versions encoded into the WAL records
// are exactly the versions the shards install at — the recovery
// invariant — and so the checkpoint's truncation-safety pin (set +
// lastSeq observed together under writeMu) keeps holding: the group's
// records and shards become visible to a checkpoint atomically.
func (d *DurableStore) commitGroup(group []*wal.Pending) {
	now := time.Now()
	members := 0
	for _, p := range group {
		members += len(p.Members)
		d.stages.Observe(trace.StageWALSubmit, now.Sub(p.EnqueuedAt))
		for _, at := range p.Members {
			// Measured from the append batch's arrival at the ingest
			// coalescer, so it covers the whole pre-commit wait a caller
			// experiences (build queue + commit queue).
			d.queueWait.Observe(now.Sub(at))
		}
	}
	d.groupSizes.Observe(members)

	st := d.store
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	base := st.Current().version
	recs := make([]wal.GroupRecord, len(group))
	for i, p := range group {
		recs[i] = wal.GroupRecord{Version: base + uint64(i) + 1, Docs: p.Docs}
	}
	walStart := time.Now()
	first, err := d.log.AppendGroup(recs)
	d.stages.Observe(trace.StageFsyncWait, time.Since(walStart))
	if err != nil {
		// The whole group is refused: its frames either never landed or
		// their durability is unknown (the log sealed either way), so no
		// batch may be acknowledged and none is installed. Under a power
		// cut the un-fsynced frames are torn away on recovery — refused
		// batches stay absent.
		for _, p := range group {
			p.Err = err
		}
		return
	}
	shs := make([]*Shard, len(group))
	for i, p := range group {
		sh := p.Payload.(*Shard)
		sh.walSeq = first + uint64(i)
		shs[i] = sh
	}
	installStart := time.Now()
	st.appendGroupLocked(shs)
	d.stages.Observe(trace.StageInstall, time.Since(installStart))
	for i, p := range group {
		p.Seq = shs[i].walSeq
		p.Version = shs[i].installedAt
	}
}

// Checkpoint persists the serving set without the WAL: every live
// shard's summary lands as an XQS1 file (shards already persisted by
// an earlier checkpoint keep their files untouched), the manifest
// swaps in atomically, orphaned shard files are collected, and WAL
// segments wholly covered by the checkpoint are deleted. It returns
// the pinned version. Appends and estimates proceed concurrently; a
// batch landing mid-checkpoint simply stays in the WAL for the next
// one.
func (d *DurableStore) Checkpoint() (uint64, error) {
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	return d.checkpointGuarded()
}

// checkpointGuarded runs one checkpoint attempt under cpMu, keeping
// the degraded surface in sync: a failure records the reason and bumps
// the failure counter, a success clears it. A checkpoint is attempted
// even when the WAL has sealed — it can still persist every already-
// acknowledged batch, shrinking what a restart must replay.
func (d *DurableStore) checkpointGuarded() (uint64, error) {
	v, err := d.checkpointLocked()
	if err != nil {
		d.cpFailures.Add(1)
		reason := err.Error()
		d.cpErr.Store(&reason)
		return 0, &DegradedError{Component: "checkpoint", Err: err}
	}
	d.cpErr.Store(nil)
	return v, nil
}

func (d *DurableStore) checkpointLocked() (uint64, error) {
	st := d.store
	// Pin the set and the log watermark together under the write lock:
	// appends log and install atomically under it, so every record with
	// seq <= lastSeq has its shard in set (or merged into one, or
	// dropped) — the truncation-safety invariant.
	st.writeMu.Lock()
	set := st.Current()
	lastSeq := d.log.LastSeq()
	st.writeMu.Unlock()

	shardDir := filepath.Join(d.dir, ShardDir)
	if err := d.fs.MkdirAll(shardDir, 0o755); err != nil {
		return 0, fmt.Errorf("shard: checkpoint: %w", err)
	}
	entries := make([]manifest.Shard, 0, set.Len())
	written := make(map[uint64]manifest.Shard)
	for _, sh := range set.Shards() {
		entry, ok := d.files[sh.id]
		if !ok {
			est, err := sh.Summary(d.opts)
			if err != nil {
				return 0, fmt.Errorf("shard: checkpoint: %w", err)
			}
			blob, err := est.MarshalBinary()
			if err != nil {
				return 0, fmt.Errorf("shard: checkpoint: %w", err)
			}
			rel := filepath.Join(ShardDir, fmt.Sprintf("cp-%d-%d.xqs", set.Version(), sh.id))
			if err := writeFileSync(d.fs, filepath.Join(d.dir, rel), blob); err != nil {
				return 0, err
			}
			entry = manifest.Shard{
				ID:     sh.id,
				File:   rel,
				Docs:   sh.docs,
				Nodes:  sh.nodes,
				WALSeq: sh.walSeq,
				Bytes:  int64(len(blob)),
				CRC32:  crc32.Checksum(blob, crcTable),
			}
			written[sh.id] = entry
		}
		entries = append(entries, entry)
	}
	if len(written) > 0 {
		// New shard files must be durable before the manifest points at
		// them.
		if err := d.fs.SyncDir(shardDir); err != nil {
			return 0, fmt.Errorf("shard: checkpoint: %w", err)
		}
	}
	man := &manifest.Manifest{
		FormatVersion: manifest.Format,
		Version:       set.Version(),
		WALSeq:        lastSeq,
		GridSize:      d.opts.GridSize,
		Shards:        entries,
	}
	if err := man.WriteFS(d.fs, d.dir); err != nil {
		return 0, err
	}
	// Only now are the new files reusable: recording them earlier would
	// let a retry after a failed round skip the directory fsync (or
	// reference files no durable manifest ever committed).
	for id, entry := range written {
		d.files[id] = entry
	}
	d.cpVersion.Store(set.Version())
	d.cpSeq.Store(lastSeq)
	d.checkpoints.Add(1)

	// The old manifest is gone; files it referenced that the new one
	// does not (compacted-away or dropped shards) are orphans now, as
	// are cache entries for shards no longer alive.
	d.gcShardFiles(shardDir, entries)

	if err := d.log.Truncate(lastSeq); err != nil {
		return 0, err
	}
	return set.Version(), nil
}

// gcShardFiles removes checkpoint files and cache entries no longer
// referenced. GC failures are cosmetic (stray files, never data loss)
// and deliberately unreported.
func (d *DurableStore) gcShardFiles(shardDir string, live []manifest.Shard) {
	liveFile := make(map[string]bool, len(live))
	liveID := make(map[uint64]bool, len(live))
	for _, e := range live {
		liveFile[filepath.Base(e.File)] = true
		liveID[e.ID] = true
	}
	for id := range d.files {
		if !liveID[id] {
			delete(d.files, id)
		}
	}
	dirents, err := d.fs.ReadDir(shardDir)
	if err != nil {
		return
	}
	for _, e := range dirents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xqs") || liveFile[e.Name()] {
			continue
		}
		_ = d.fs.Remove(filepath.Join(shardDir, e.Name()))
	}
}

// Drop durably removes a shard: the serving set drops it and a
// checkpoint immediately persists the new set — without one, the next
// recovery would resurrect the shard from its WAL record.
func (d *DurableStore) Drop(id uint64) (bool, error) {
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	if !d.store.Drop(id) {
		return false, nil
	}
	_, err := d.checkpointGuarded()
	return true, err
}

// AppendSummary durably lands a prebuilt summary-only shard (streamed
// ingest: the raw documents were never buffered, so there is nothing
// to WAL) and makes it durable with an immediate checkpoint — the same
// discipline as Drop. The ack is the checkpoint: on failure the shard
// is rolled back out of the serving set so no un-durable batch is
// served as if acknowledged. (If the failure landed after the manifest
// committed, a recovery may resurrect the batch — allowed, as un-acked
// batches are "maybe present", exactly like an un-fsynced WAL tail.)
func (d *DurableStore) AppendSummary(est *core.Estimator, docs, nodes int) (*Shard, error) {
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	sh, err := d.store.AppendSummary(est, docs, nodes)
	if err != nil {
		return nil, err
	}
	if _, err := d.checkpointGuarded(); err != nil {
		d.store.Drop(sh.id)
		return nil, err
	}
	return sh, nil
}

// Close drains and stops the ingest coalescer and the group committer
// (resolving every batch already accepted), checkpoints the serving
// set, and closes the WAL. The directory can be reopened with
// OpenDurable; a process that dies without Close recovers the same
// state from manifest + WAL instead.
func (d *DurableStore) Close() error {
	d.ingestMu.Lock()
	wasClosed := d.ingestClosed
	d.ingestClosed = true
	d.ingestMu.Unlock()
	if !wasClosed {
		d.ingestEnq.Wait() // every accepted AppendDocs has enqueued
		close(d.ingestStop)
	}
	<-d.ingestDone // loop has drained the queue and its builds finished
	d.committer.Close()
	_, err := d.Checkpoint()
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats snapshots the durable layer.
func (d *DurableStore) Stats() DurabilityStats {
	segs := d.log.Segments()
	var bytes int64
	for _, s := range segs {
		bytes += s.Bytes
	}
	comp, reason, degraded := d.Degraded()
	groups, batches, _, _ := d.committer.Stats()
	gc := GroupCommitStats{
		Groups:    groups,
		Batches:   batches,
		GroupSize: d.groupSizes.Summary(),
		Fsyncs:    d.log.Fsyncs(),
		QueueWait: d.queueWait.Summary(),
	}
	if up := time.Since(d.openedAt).Seconds(); up > 0 {
		gc.FsyncsPerSec = float64(gc.Fsyncs) / up
	}
	return DurabilityStats{
		Dir:                d.dir,
		Fsync:              d.walMode.String(),
		WALSegments:        len(segs),
		WALBytes:           bytes,
		LastSeq:            d.log.LastSeq(),
		DurableSeq:         d.log.DurableSeq(),
		CheckpointVersion:  d.cpVersion.Load(),
		CheckpointWALSeq:   d.cpSeq.Load(),
		Checkpoints:        d.checkpoints.Load(),
		CheckpointFailures: d.cpFailures.Load(),
		Degraded:           degraded,
		DegradedComponent:  comp,
		DegradedReason:     reason,
		GroupCommit:        gc,
		Recovery:           d.recovery,
	}
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(fsys fsio.FS, path string, data []byte) error {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("shard: checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("shard: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("shard: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shard: checkpoint: %w", err)
	}
	return nil
}
