package core

import (
	"math"
	"testing"

	"xmlest/internal/histogram"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// fuzzSeedSummaries builds summary blobs covering the container's
// branches: plain tag summaries, coverage histograms, level histograms,
// non-uniform (equi-depth) grids, fractional counts, and an XQS2 shard
// set wrapping two of them.
func fuzzSeedSummaries(f *testing.F) [][]byte {
	f.Helper()
	var blobs [][]byte

	tree := xmltree.Fig1Document()
	cat := predicate.NewCatalog(tree)
	cat.AddAllTags()
	cat.Add(predicate.True{})

	for _, opts := range []Options{
		{GridSize: 2},
		{GridSize: 4, LevelHistograms: true},
		{GridSize: 3, EquiDepth: true},
	} {
		est, err := NewEstimator(cat, opts)
		if err != nil {
			f.Fatal(err)
		}
		b, err := est.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		blobs = append(blobs, b)
	}

	// Fractional counts: a summary assembled from a synthetic estimated
	// histogram (the float branch of the cell encoding).
	grid := histogram.MustUniformGrid(3, 30)
	trueHist := histogram.NewPosition(grid)
	trueHist.Add(0, 2, 10)
	frac := histogram.NewPosition(grid)
	frac.Add(0, 1, 0.375)
	frac.Add(1, 2, 2.5)
	est, err := NewEstimatorFromHistograms(trueHist, map[string]*histogram.Position{"frac": frac}, map[string]bool{"frac": true})
	if err != nil {
		f.Fatal(err)
	}
	fb, err := est.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	blobs = append(blobs, fb)

	// XQS2 shard-set container wrapping two summaries.
	e1, err := UnmarshalEstimator(blobs[0])
	if err != nil {
		f.Fatal(err)
	}
	setBlob, err := MarshalShardSet([]ShardSummary{
		{ID: 1, Docs: 1, Nodes: tree.NumNodes(), Est: e1},
		{ID: 2, Docs: 0, Nodes: 10, Est: est},
	})
	if err != nil {
		f.Fatal(err)
	}
	blobs = append(blobs, setBlob)
	return blobs
}

// estimatorsEquivalent compares two estimators structurally: names,
// grids, per-cell histogram counts (bitwise) and overlap flags.
func estimatorsEquivalent(t *testing.T, a, b *Estimator) {
	t.Helper()
	an, bn := a.Names(), b.Names()
	if len(an) != len(bn) {
		t.Fatalf("name count %d != %d", len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("name %d: %q != %q", i, an[i], bn[i])
		}
	}
	if !a.Grid().Equal(b.Grid()) {
		t.Fatal("grid changed")
	}
	check := func(ha, hb *histogram.Position, label string) {
		g := ha.Grid().Size()
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				if math.Float64bits(ha.Count(i, j)) != math.Float64bits(hb.Count(i, j)) {
					t.Fatalf("%s cell (%d,%d): %v != %v", label, i, j, ha.Count(i, j), hb.Count(i, j))
				}
			}
		}
	}
	check(a.TrueHistogram(), b.TrueHistogram(), "TRUE")
	for _, name := range an {
		ha, err := a.Histogram(name)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := b.Histogram(name)
		if err != nil {
			t.Fatal(err)
		}
		check(ha, hb, name)
		if a.NoOverlap(name) != b.NoOverlap(name) {
			t.Fatalf("%s overlap flag changed", name)
		}
		ca, cb := a.CoverageHistogram(name), b.CoverageHistogram(name)
		if (ca == nil) != (cb == nil) {
			t.Fatalf("%s coverage presence changed", name)
		}
	}
}

// FuzzSummaryEncodeDecode round-trips the estimator summary container:
// any blob UnmarshalEstimator accepts must re-marshal and re-unmarshal
// to a structurally identical estimator, and the decoder must never
// panic. XQS2 shard-set blobs get the same treatment per shard.
func FuzzSummaryEncodeDecode(f *testing.F) {
	for _, b := range fuzzSeedSummaries(f) {
		f.Add(b)
	}
	f.Add([]byte("XQS1"))
	f.Add([]byte("XQS2\x01"))
	f.Add([]byte("junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if IsShardSetBlob(data) {
			shards, err := UnmarshalShardSet(data)
			if err != nil {
				return
			}
			blob, err := MarshalShardSet(shards)
			if err != nil {
				t.Fatalf("re-marshal shard set: %v", err)
			}
			shards2, err := UnmarshalShardSet(blob)
			if err != nil {
				t.Fatalf("re-unmarshal shard set: %v", err)
			}
			if len(shards) != len(shards2) {
				t.Fatalf("shard count %d != %d", len(shards), len(shards2))
			}
			for i := range shards {
				if shards[i].ID != shards2[i].ID || shards[i].Docs != shards2[i].Docs || shards[i].Nodes != shards2[i].Nodes {
					t.Fatalf("shard %d metadata changed", i)
				}
				estimatorsEquivalent(t, shards[i].Est, shards2[i].Est)
			}
			return
		}
		est, err := UnmarshalEstimator(data)
		if err != nil {
			return
		}
		blob, err := est.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted summary failed: %v", err)
		}
		est2, err := UnmarshalEstimator(blob)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		estimatorsEquivalent(t, est, est2)
	})
}
