package core

import (
	"bytes"
	"testing"

	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// fig2Patterns are the twig shapes exercised against the Fig 1
// document in the caching and determinism tests.
var fig2Patterns = []string{
	"//faculty//TA",
	"//department//faculty",
	"//faculty[.//TA][.//RA]",
	"//department//faculty[.//TA]//RA",
	"//department/faculty",
}

// TestParallelBuildDeterministic asserts that the worker-pool build
// produces a bit-identical estimator for every worker count: the
// serialized summaries match, and so do all estimates (the issue's
// "same estimates regardless of GOMAXPROCS" requirement — worker count
// is what GOMAXPROCS feeds).
func TestParallelBuildDeterministic(t *testing.T) {
	tr := xmltree.Fig1Document()
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	cat.Add(predicate.True{})

	build := func(workers int) *Estimator {
		t.Helper()
		est, err := NewEstimator(cat, Options{GridSize: 4, LevelHistograms: true, BuildWorkers: workers})
		if err != nil {
			t.Fatalf("NewEstimator(workers=%d): %v", workers, err)
		}
		return est
	}
	ref := build(1)
	refBlob, err := ref.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, workers := range []int{2, 4, 16} {
		est := build(workers)
		blob, err := est.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal workers=%d: %v", workers, err)
		}
		if !bytes.Equal(refBlob, blob) {
			t.Fatalf("workers=%d: serialized summary differs from sequential build", workers)
		}
		for _, src := range fig2Patterns {
			p := pattern.MustParse(src)
			want, err := ref.EstimateTwig(p)
			if err != nil {
				t.Fatalf("ref estimate %s: %v", src, err)
			}
			got, err := est.EstimateTwig(p)
			if err != nil {
				t.Fatalf("workers=%d estimate %s: %v", workers, src, err)
			}
			if got.Estimate != want.Estimate {
				t.Fatalf("workers=%d %s: estimate %v, want %v", workers, src, got.Estimate, want.Estimate)
			}
		}
	}
}

// TestPHJoinSparseMatchesDense cross-checks the sparse cached-sum
// pH-Join against the literal Fig 9 transcription on every predicate
// pair of the Fig 1 document across grid sizes.
func TestPHJoinSparseMatchesDense(t *testing.T) {
	tr := xmltree.Fig1Document()
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	for _, g := range []int{2, 3, 5, 8} {
		est, err := NewEstimator(cat, Options{GridSize: g})
		if err != nil {
			t.Fatalf("NewEstimator: %v", err)
		}
		for _, a := range cat.Names() {
			for _, b := range cat.Names() {
				ha, _ := est.Histogram(a)
				hb, _ := est.Histogram(b)
				sparse, err := PHJoin(ha, hb)
				if err != nil {
					t.Fatalf("PHJoin: %v", err)
				}
				dense, err := PHJoinDense(ha, hb)
				if err != nil {
					t.Fatalf("PHJoinDense: %v", err)
				}
				tol := 1e-9 * (1 + dense)
				if diff := sparse - dense; diff > tol || diff < -tol {
					t.Fatalf("g=%d %s//%s: sparse %v, dense %v", g, a, b, sparse, dense)
				}
			}
		}
	}
}

// TestJoinCacheTransparent asserts that repeated and cache-cold
// estimates agree exactly: the sub-twig join cache must be
// semantically invisible.
func TestJoinCacheTransparent(t *testing.T) {
	_, _, warm := fig1Estimator(t, 4)
	for _, src := range fig2Patterns {
		p := pattern.MustParse(src)
		first, err := warm.EstimateTwig(p)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		second, err := warm.EstimateTwig(p) // cache hit
		if err != nil {
			t.Fatalf("%s (cached): %v", src, err)
		}
		if first.Estimate != second.Estimate {
			t.Fatalf("%s: cached estimate %v != first %v", src, second.Estimate, first.Estimate)
		}
		_, _, cold := fig1Estimator(t, 4)
		fresh, err := cold.EstimateTwig(p)
		if err != nil {
			t.Fatalf("%s (fresh): %v", src, err)
		}
		if fresh.Estimate != first.Estimate {
			t.Fatalf("%s: fresh estimator %v != cached %v", src, fresh.Estimate, first.Estimate)
		}
	}
}

// TestPreparedQuery exercises the compiled-query path: equality with
// EstimateTwig, stable repeated results, and eager resolution errors.
func TestPreparedQuery(t *testing.T) {
	_, _, est := fig1Estimator(t, 4)
	for _, src := range fig2Patterns {
		p := pattern.MustParse(src)
		want, err := est.EstimateTwig(p)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		pq, err := est.Prepare(pattern.MustParse(src))
		if err != nil {
			t.Fatalf("Prepare(%s): %v", src, err)
		}
		for call := 0; call < 3; call++ {
			got, err := pq.Estimate()
			if err != nil {
				t.Fatalf("%s call %d: %v", src, call, err)
			}
			if got.Estimate != want.Estimate {
				t.Fatalf("%s call %d: %v, want %v", src, call, got.Estimate, want.Estimate)
			}
			if got.UsedNoOverlap != want.UsedNoOverlap {
				t.Fatalf("%s call %d: UsedNoOverlap %v, want %v", src, call, got.UsedNoOverlap, want.UsedNoOverlap)
			}
		}
		sp, err := pq.EstimateSubPattern()
		if err != nil {
			t.Fatalf("%s: EstimateSubPattern: %v", src, err)
		}
		if sp.Total() != want.Estimate {
			t.Fatalf("%s: sub-pattern total %v, want %v", src, sp.Total(), want.Estimate)
		}
	}
	if _, err := est.Prepare(pattern.MustParse("//nosuchtag//TA")); err == nil {
		t.Fatalf("Prepare with unknown predicate: want error")
	}
}

func TestNewEstimatorRejectsOversizedGrid(t *testing.T) {
	tr := xmltree.Fig1Document()
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	if _, err := NewEstimator(cat, Options{GridSize: 1<<16 + 1}); err == nil {
		t.Fatalf("GridSize beyond uint16 bucket range: want error")
	}
}

// TestEstimateSubPatternReturnsPrivateClones guards the join cache
// against callers mutating returned sub-patterns (the planner receives
// these).
func TestEstimateSubPatternReturnsPrivateClones(t *testing.T) {
	_, _, est := fig1Estimator(t, 4)
	p := pattern.MustParse("//faculty//TA")
	sp, err := est.EstimateSubPattern(p)
	if err != nil {
		t.Fatalf("EstimateSubPattern: %v", err)
	}
	want := sp.Total()
	sp.Est.Scale(7) // caller mutation must not leak into the cache
	if sp.Cvg != nil {
		sp.Cvg.SetFrac(0, 0, 0, 0, 0.5) // nor coverage mutation
	}
	res, err := est.EstimateTwig(p)
	if err != nil {
		t.Fatalf("EstimateTwig: %v", err)
	}
	if res.Estimate != want {
		t.Fatalf("estimate after caller mutation = %v, want %v", res.Estimate, want)
	}
	// A twig extending the mutated sub-twig must still match a cold
	// estimator (the cached coverage must be untouched).
	bigger := pattern.MustParse("//department//faculty//TA")
	_, _, cold := fig1Estimator(t, 4)
	wantBig, err := cold.EstimateTwig(bigger)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	gotBig, err := est.EstimateTwig(bigger)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if gotBig.Estimate != wantBig.Estimate {
		t.Fatalf("extended twig after coverage mutation = %v, want %v", gotBig.Estimate, wantBig.Estimate)
	}
}

func TestSubtreeSignature(t *testing.T) {
	sigOf := func(src string) string { return subtreeSig(pattern.MustParse(src).Root) }
	if a, b := sigOf("//faculty[.//TA][.//RA]"), sigOf("//faculty[.//RA][.//TA]"); a == b {
		t.Fatalf("child order must distinguish signatures: %q", a)
	}
	if a, b := sigOf("//department/faculty"), sigOf("//department//faculty"); a == b {
		t.Fatalf("axis must distinguish signatures: %q", a)
	}
	if a, b := sigOf("//faculty//TA"), sigOf("//faculty//TA"); a != b {
		t.Fatalf("identical patterns must share a signature: %q vs %q", a, b)
	}

	// Catalog aliases may contain the structural markers; the
	// length-prefixed encoding must keep such twigs distinct.
	twoChildren := &pattern.Node{Test: "{a}", Children: []*pattern.Node{
		{Test: "{b}", Axis: pattern.Descendant},
		{Test: "{c}", Axis: pattern.Descendant},
	}}
	oneNastyChild := &pattern.Node{Test: "{a}", Children: []*pattern.Node{
		{Test: "{b][//c}", Axis: pattern.Descendant},
	}}
	if a, b := subtreeSig(twoChildren), subtreeSig(oneNastyChild); a == b {
		t.Fatalf("bracket-containing alias collides with twig structure: %q", a)
	}
}
