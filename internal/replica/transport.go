// The transport seam: followers consume frames through a Transport so
// the chaos suite can interpose a deterministic FaultTransport between
// the follower's state machine and the real network, the same way the
// storage engine threads fsio.FS everywhere so FaultFS can fail op N.

package replica

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// Stream is one open replication stream. Next blocks until a frame
// arrives (leaders heartbeat on an interval, so a healthy stream never
// blocks long); it returns io.EOF only when the underlying connection
// ended between frames. Close releases the connection and unblocks a
// pending Next.
type Stream interface {
	Next() (Frame, error)
	Close() error
}

// Transport opens replication streams. from is the follower's durable
// WAL watermark; version its serving-set version (see StreamPath).
type Transport interface {
	Open(ctx context.Context, from, version uint64) (Stream, error)
}

// HTTPTransport streams from a leader's StreamPath endpoint.
type HTTPTransport struct {
	// Base is the leader's base URL, e.g. "http://10.0.0.1:8080".
	Base string
	// Client is the HTTP client to use; http.DefaultClient when nil.
	// Do not set a Client.Timeout — it would cap the whole stream's
	// lifetime, heartbeats included; the follower enforces per-frame
	// read deadlines itself by closing a stalled stream.
	Client *http.Client
}

func (t *HTTPTransport) Open(ctx context.Context, from, version uint64) (Stream, error) {
	u, err := url.Parse(t.Base)
	if err != nil {
		return nil, fmt.Errorf("replica: upstream url: %w", err)
	}
	u = u.JoinPath(StreamPath)
	q := u.Query()
	q.Set("from", strconv.FormatUint(from, 10))
	q.Set("version", strconv.FormatUint(version, 10))
	u.RawQuery = q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: connecting to leader: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("replica: leader refused stream: %s: %s", resp.Status, body)
	}
	if err := ReadMagic(resp.Body); err != nil {
		resp.Body.Close()
		return nil, err
	}
	return &httpStream{body: resp.Body}, nil
}

type httpStream struct {
	body io.ReadCloser
}

func (s *httpStream) Next() (Frame, error) { return ReadFrame(s.body) }
func (s *httpStream) Close() error         { return s.body.Close() }
