package histogram

import (
	"fmt"

	"xmlest/internal/xmltree"
)

// MaxGridSize is the largest grid NodeCells can represent (bucket
// indices are uint16). Grid-accepting entry points reject larger grids
// with an error before reaching NodeCells.
const MaxGridSize = 1 << 16

// Cell is one non-zero cell of a position histogram, in the sparse
// representation Theorem 1 motivates: a built histogram has O(g)
// non-zero cells, so iterating cells beats scanning the dense g×g
// array whenever g is large or the same histogram participates in many
// joins.
type Cell struct {
	I, J  int
	Count float64
}

// Sums holds every partial and prefix summation plane the Fig 6 / Fig 9
// estimation formulas consult, precomputed once per histogram in O(g²)
// and cached on the Position (see Position.Sums). With the planes in
// hand, each per-cell join coefficient is O(1), so a join over a sparse
// operand costs O(nnz) instead of O(g²).
//
// Plane definitions for the source histogram H:
//
//	Self(i, j)   = H[i][j]
//	Down(i, j)   = Σ_{l=i..j-1} H[i][l]               (same start column, below)
//	Right(i, j)  = Σ_{k=i+1..j} H[k][j]               (same end row, to the right)
//	Inside(i, j) = Σ_{k=i+1..j} Σ_{l=k..j-1} H[k][l]  (strictly inside)
//	Rect(...)    = axis-aligned rectangle sums from an up-left prefix matrix
type Sums struct {
	g                         int
	self, down, right, inside []float64

	// prefix[i][j] = Σ_{k<=i} Σ_{l<=j} H[k][l], with one extra row and
	// column of zeros at index 0, used for the up-left region sums.
	prefix []float64
}

// newSums computes every plane for h. The passes mirror the Fig 9
// pseudo-code (see PHJoinDense for the literal transcription).
func newSums(h *Position) *Sums {
	g := h.grid.Size()
	s := &Sums{
		g:      g,
		self:   make([]float64, g*g),
		down:   make([]float64, g*g),
		right:  make([]float64, g*g),
		inside: make([]float64, g*g),
		prefix: make([]float64, (g+1)*(g+1)),
	}
	copy(s.self, h.cells)
	// Pass 1: column partial sums (the Fig 9 pass 1 recurrence).
	for i := 0; i < g; i++ {
		for j := i + 1; j < g; j++ {
			s.down[i*g+j] = s.down[i*g+j-1] + s.self[i*g+j-1]
		}
	}
	// Pass 2: row and region partial sums (Fig 9 pass 2).
	for j := g - 1; j >= 0; j-- {
		for i := j - 1; i >= 0; i-- {
			s.right[i*g+j] = s.right[(i+1)*g+j] + s.self[(i+1)*g+j]
			s.inside[i*g+j] = s.inside[(i+1)*g+j] + s.down[(i+1)*g+j]
		}
	}
	// Up-left prefix matrix for the descendant-based regions.
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			s.prefix[(i+1)*(g+1)+j+1] = s.self[i*g+j] +
				s.prefix[i*(g+1)+j+1] + s.prefix[(i+1)*(g+1)+j] - s.prefix[i*(g+1)+j]
		}
	}
	return s
}

// GridSize returns the number of buckets per axis of the summed grid.
func (s *Sums) GridSize() int { return s.g }

// Self returns H[i][j].
func (s *Sums) Self(i, j int) float64 { return s.self[i*s.g+j] }

// Down returns the same-start-column partial sum below (i, j).
func (s *Sums) Down(i, j int) float64 { return s.down[i*s.g+j] }

// Right returns the same-end-row partial sum to the right of (i, j).
func (s *Sums) Right(i, j int) float64 { return s.right[i*s.g+j] }

// Inside returns the strictly-inside region sum of (i, j).
func (s *Sums) Inside(i, j int) float64 { return s.inside[i*s.g+j] }

// Rect returns Σ H[k][l] over k in [i0, i1], l in [j0, j1] (inclusive,
// clamped to the grid; empty ranges return 0).
func (s *Sums) Rect(i0, i1, j0, j1 int) float64 {
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 >= s.g {
		i1 = s.g - 1
	}
	if j1 >= s.g {
		j1 = s.g - 1
	}
	if i0 > i1 || j0 > j1 {
		return 0
	}
	g1 := s.g + 1
	return s.prefix[(i1+1)*g1+j1+1] - s.prefix[i0*g1+j1+1] -
		s.prefix[(i1+1)*g1+j0] + s.prefix[i0*g1+j0]
}

// Triangle returns Σ_{m=i..j} Σ_{n=m..j} H[m][n] — the descendant-region
// triangle the Fig 10 participation formula (case 2) sums over.
func (s *Sums) Triangle(i, j int) float64 {
	if i > j {
		return 0
	}
	return s.Inside(i, j) + s.Down(i, j) + s.Right(i, j) + s.Self(i, j)
}

// NodeCells is the precomputed grid cell (start bucket, end bucket) of
// every tree node, shared by all per-predicate summary builds of one
// estimator so bucket lookups run once per node instead of once per
// node per predicate. Index 0 is the dummy root and is never consulted.
type NodeCells struct {
	grid Grid
	I, J []uint16
}

// ComputeNodeCells buckets every node of the tree once. A transient
// position→bucket lookup table makes each node O(1); positions are
// dense interval labels, so the table is ~2 bytes per position and is
// released when the function returns. Trees with unusually sparse
// labels fall back to per-node binary search.
func ComputeNodeCells(t *xmltree.Tree, grid Grid) *NodeCells {
	if grid.Size() > MaxGridSize {
		// Bucket indices are stored as uint16; silent wrap-around would
		// corrupt every downstream histogram. Error-returning entry
		// points (NewEstimator, BuildCoverage) reject such grids before
		// reaching here.
		panic(fmt.Sprintf("histogram: grid size %d exceeds %d", grid.Size(), MaxGridSize))
	}
	n := len(t.Nodes)
	nc := &NodeCells{grid: grid, I: make([]uint16, n), J: make([]uint16, n)}
	bounds := grid.Bounds()
	g := grid.Size()
	maxPos := grid.MaxPos()
	// Interval numbering assigns 2 labels per node, so a dense tree has
	// maxPos ≈ 2n; 8× covers generous label gaps before the table stops
	// paying for itself.
	if maxPos <= 8*n+1024 {
		table := make([]uint16, maxPos)
		for b := 0; b < g; b++ {
			for pos := bounds[b]; pos < bounds[b+1]; pos++ {
				table[pos] = uint16(b)
			}
		}
		for id := 1; id < n; id++ {
			node := &t.Nodes[id]
			nc.I[id] = table[node.Start]
			nc.J[id] = table[node.End]
		}
		return nc
	}
	for id := 1; id < n; id++ {
		node := &t.Nodes[id]
		nc.I[id] = uint16(grid.Bucket(node.Start))
		nc.J[id] = uint16(grid.Bucket(node.End))
	}
	return nc
}

// Grid returns the grid the cells were computed on.
func (nc *NodeCells) Grid() Grid { return nc.grid }

// Cell returns the (start bucket, end bucket) cell of a node id.
func (nc *NodeCells) Cell(id xmltree.NodeID) (int, int) {
	return int(nc.I[id]), int(nc.J[id])
}
