package shard

import (
	"errors"
	"testing"
	"time"

	"xmlest/internal/exec"
	"xmlest/internal/pattern"
)

func TestCountBudgetMatchesCount(t *testing.T) {
	st := NewStore(allTagsSpec())
	for _, tr := range []struct{ f, tas int }{{3, 2}, {5, 1}, {2, 4}} {
		if _, err := st.AppendTree(doc(tr.f, tr.tas)); err != nil {
			t.Fatal(err)
		}
	}
	set := st.Current()
	for _, src := range []string{
		"//department//faculty",
		"//department//faculty//TA",
		"//faculty[.//TA]//name",
	} {
		p := pattern.MustParse(src)
		want, err := set.Count(p)
		if err != nil {
			t.Fatalf("Count(%s): %v", src, err)
		}
		got, err := set.CountBudget(p, defaultOpts, time.Time{})
		if err != nil {
			t.Fatalf("CountBudget(%s): %v", src, err)
		}
		if got != want {
			t.Errorf("CountBudget(%s) = %v, Count = %v", src, got, want)
		}
	}
}

func TestCountBudgetSingleNode(t *testing.T) {
	st := NewStore(allTagsSpec())
	if _, err := st.AppendTree(doc(3, 2)); err != nil {
		t.Fatal(err)
	}
	set := st.Current()
	p := pattern.MustParse("//faculty")
	want, err := set.Count(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := set.CountBudget(p, defaultOpts, time.Time{})
	if err != nil {
		t.Fatalf("CountBudget: %v", err)
	}
	if got != want || got != 3 {
		t.Errorf("single-node CountBudget = %v, want %v (= 3)", got, want)
	}
}

func TestCountBudgetSummaryOnly(t *testing.T) {
	st := NewStore(allTagsSpec())
	if _, err := st.AppendTree(doc(3, 2)); err != nil {
		t.Fatal(err)
	}
	blob, err := st.Current().Marshal(defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSet(blob)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loaded.CountBudget(pattern.MustParse("//department//faculty"), defaultOpts, time.Time{})
	if !errors.Is(err, ErrSummaryOnly) {
		t.Errorf("summary-only CountBudget err = %v, want ErrSummaryOnly", err)
	}
	// Count carries the same sentinel for callers that classify.
	_, err = loaded.Count(pattern.MustParse("//department//faculty"))
	if !errors.Is(err, ErrSummaryOnly) {
		t.Errorf("summary-only Count err = %v, want ErrSummaryOnly", err)
	}
}

func TestCountBudgetExpiredDeadline(t *testing.T) {
	// Enough faculty tuples to cross the executor's deadline-check
	// stride before the scan drains.
	st := NewStore(allTagsSpec())
	if _, err := st.AppendTree(doc(3000, 1)); err != nil {
		t.Fatal(err)
	}
	p := pattern.MustParse("//department//faculty//TA")
	_, err := st.Current().CountBudget(p, defaultOpts, time.Now().Add(-time.Second))
	if !errors.Is(err, exec.ErrDeadline) {
		t.Errorf("expired deadline err = %v, want exec.ErrDeadline", err)
	}
}
