package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

func catalogResolver(c *predicate.Catalog) Resolver {
	return func(name string) ([]xmltree.NodeID, error) {
		e, err := c.Get(name)
		if err != nil {
			return nil, err
		}
		return e.Nodes, nil
	}
}

func fig1Resolver(t *testing.T) (*xmltree.Tree, Resolver) {
	t.Helper()
	tr := xmltree.Fig1Document()
	c := predicate.NewCatalog(tr)
	c.AddAllTags()
	c.Add(predicate.True{})
	return tr, catalogResolver(c)
}

func TestCountPairsFig1(t *testing.T) {
	tr, _ := fig1Resolver(t)
	cases := []struct {
		anc, desc string
		want      int64
	}{
		{"faculty", "TA", 2},
		{"faculty", "RA", 6},
		{"department", "faculty", 3},
		{"department", "TA", 5},
		{"lecturer", "TA", 3},
		{"TA", "faculty", 0},
		{"faculty", "faculty", 0},
	}
	for _, c := range cases {
		got := CountPairs(tr, tr.NodesWithTag(c.anc), tr.NodesWithTag(c.desc))
		if got != c.want {
			t.Errorf("%s//%s = %d, want %d", c.anc, c.desc, got, c.want)
		}
	}
}

func TestCountChildPairsFig1(t *testing.T) {
	tr, _ := fig1Resolver(t)
	if got := CountChildPairs(tr, tr.NodesWithTag("department"), tr.NodesWithTag("faculty")); got != 3 {
		t.Errorf("department/faculty = %d, want 3", got)
	}
	if got := CountChildPairs(tr, tr.NodesWithTag("department"), tr.NodesWithTag("TA")); got != 0 {
		t.Errorf("department/TA = %d, want 0 (TAs are grandchildren)", got)
	}
}

func TestCountTwigFig1(t *testing.T) {
	tr, resolve := fig1Resolver(t)
	cases := []struct {
		src  string
		want float64
	}{
		{"//faculty//TA", 2},
		{"//department//faculty", 3},
		{"//department//faculty[.//TA][.//RA]", 4}, // 1 faculty × 2 TA × 2 RA
		{"//department//faculty//TA", 2},
		{"//department/faculty", 3},
		{"//faculty/TA", 2},
		{"//lecturer//RA", 0},
		{"//*//TA", 10}, // dept(5) + lecturer(3) + faculty(2) ancestors... see below
	}
	for _, c := range cases {
		got, err := CountTwig(tr, pattern.MustParse(c.src), resolve)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("CountTwig(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestCountTwigMatchesBruteForce(t *testing.T) {
	tr, resolve := fig1Resolver(t)
	for _, src := range []string{
		"//faculty//TA",
		"//department//faculty[.//TA][.//RA]",
		"//department//faculty[.//secretary]//RA",
		"//*//name",
		"//department/faculty/TA",
	} {
		p := pattern.MustParse(src)
		fast, err := CountTwig(tr, p, resolve)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		brute, err := BruteCount(tr, p, resolve)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if fast != float64(brute) {
			t.Errorf("%s: fast = %v, brute = %d", src, fast, brute)
		}
	}
}

func TestPropertyCountTwigEqualsBrute(t *testing.T) {
	patterns := []string{
		"//a//b",
		"//a//b//c",
		"//a[.//b][.//c]",
		"//a/b",
		"//a[.//b]//c",
		"//b//b",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 2+r.Intn(40))
		c := predicate.NewCatalog(tr)
		c.AddAllTags()
		c.Add(predicate.True{})
		resolve := catalogResolver(c)
		for _, src := range patterns {
			p := pattern.MustParse(src)
			fast, err := CountTwig(tr, p, resolve)
			if err != nil {
				// Tags may be absent from small random trees; missing
				// predicate entries are the only acceptable failure.
				continue
			}
			brute, _ := BruteCount(tr, p, resolve)
			if fast != float64(brute) {
				t.Logf("seed %d %s: fast=%v brute=%d", seed, src, fast, brute)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randomTree(r *rand.Rand, n int) *xmltree.Tree {
	b := xmltree.NewBuilder()
	tags := []string{"a", "b", "c"}
	open := 0
	for i := 0; i < n; i++ {
		if open > 0 && r.Intn(3) == 0 {
			b.End()
			open--
		}
		b.Begin(tags[r.Intn(len(tags))])
		open++
	}
	return b.Tree()
}

func TestCountTwigMissingPredicate(t *testing.T) {
	tr, resolve := fig1Resolver(t)
	if _, err := CountTwig(tr, pattern.MustParse("//nosuchtag//TA"), resolve); err == nil {
		t.Errorf("missing predicate: want error")
	}
}

func TestParticipationFig1(t *testing.T) {
	tr, resolve := fig1Resolver(t)

	// //faculty//TA: only one faculty has TAs (2 of the 5 TAs).
	parts, err := Participation(tr, pattern.MustParse("//faculty//TA"), resolve)
	if err != nil {
		t.Fatalf("Participation: %v", err)
	}
	if parts[0] != 1 || parts[1] != 2 {
		t.Errorf("faculty//TA participation = %v, want [1 2]", parts)
	}

	// Fig 2 twig: 1 faculty, its 2 TAs, its 2 RAs.
	parts, err = Participation(tr, pattern.MustParse("//department//faculty[.//TA][.//RA]"), resolve)
	if err != nil {
		t.Fatalf("Participation: %v", err)
	}
	want := []int64{1, 1, 2, 2}
	for i := range want {
		if parts[i] != want[i] {
			t.Errorf("Fig 2 participation = %v, want %v", parts, want)
			break
		}
	}
}

func TestParticipationViabilityPropagates(t *testing.T) {
	// b under a[0] has a c below; b under a[1] has none. Pattern
	// //a//b//c: the second b has count 0 and must not participate;
	// likewise c nodes outside any viable b must not.
	tr, err := xmltree.ParseString(`<r><a><b><c/></b></a><a><b/></a><c/></r>`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c := predicate.NewCatalog(tr)
	c.AddAllTags()
	parts, err := Participation(tr, pattern.MustParse("//a//b//c"), catalogResolver(c))
	if err != nil {
		t.Fatalf("Participation: %v", err)
	}
	want := []int64{1, 1, 1}
	for i := range want {
		if parts[i] != want[i] {
			t.Errorf("participation = %v, want %v", parts, want)
			break
		}
	}
}

func TestCountPairsEmptyLists(t *testing.T) {
	tr, _ := fig1Resolver(t)
	if got := CountPairs(tr, nil, tr.NodesWithTag("TA")); got != 0 {
		t.Errorf("empty anc: %d", got)
	}
	if got := CountPairs(tr, tr.NodesWithTag("faculty"), nil); got != 0 {
		t.Errorf("empty desc: %d", got)
	}
}
