// FaultTransport: deterministic fault injection at the transport seam,
// mirroring fsio.FaultFS. Every transport operation — each Open and
// each Next — increments one global 1-based counter; a fault armed at
// index N fires when op N executes, either once (one-shot) or for every
// op from N on (sticky, a dead network rather than a glitch). The chaos
// sweep runs a workload once to count ops, then replays it len(ops)
// times with a fault at each index, asserting the follower either
// converges bit-identically after reconnecting or refuses loudly —
// never serves silently wrong data.

package replica

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"
)

// FaultKind is what an injected fault does to the matched op.
type FaultKind int

const (
	// FaultDrop fails the op outright — a refused connection (Open) or
	// a reset mid-stream (Next).
	FaultDrop FaultKind = iota
	// FaultCorrupt delivers the frame with a payload byte flipped, as
	// wire corruption would. Only meaningful on Next; on Open it
	// behaves like FaultDrop.
	FaultCorrupt
	// FaultTruncate ends the stream as if the connection died
	// mid-frame: Next returns io.ErrUnexpectedEOF. On Open it behaves
	// like FaultDrop.
	FaultTruncate
	// FaultStall delays the op by the transport's StallDelay before
	// performing it normally — long enough to trip the follower's
	// per-frame read deadline when configured so.
	FaultStall
)

func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultCorrupt:
		return "corrupt"
	case FaultTruncate:
		return "truncate"
	case FaultStall:
		return "stall"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// TransportFault arms one fault at the given 1-based op index.
type TransportFault struct {
	Op     uint64
	Kind   FaultKind
	Sticky bool
}

// TransportOp is one logged transport operation, for sweep planning.
type TransportOp struct {
	Index uint64
	Name  string // "open" or "next"
}

// FaultTransport wraps a Transport with deterministic fault injection.
// Safe for concurrent use; the op counter is global across all streams
// the transport opens, so an injection plan stays valid as long as the
// workload is deterministic.
type FaultTransport struct {
	Base Transport
	// StallDelay is how long FaultStall sleeps; 2s when zero.
	StallDelay time.Duration

	mu     sync.Mutex
	ops    uint64
	faults []TransportFault
	opLog  []TransportOp
}

// NewFaultTransport wraps base with the given faults armed.
func NewFaultTransport(base Transport, faults ...TransportFault) *FaultTransport {
	return &FaultTransport{Base: base, faults: faults}
}

// SetFaults replaces the armed faults (the op counter keeps running).
func (t *FaultTransport) SetFaults(faults ...TransportFault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.faults = faults
}

// OpCount returns the number of transport ops performed so far.
func (t *FaultTransport) OpCount() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops
}

// Ops returns the op log: the schedule a sweep iterates over.
func (t *FaultTransport) Ops() []TransportOp {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TransportOp(nil), t.opLog...)
}

// step counts one op and reports the fault to apply, if any.
func (t *FaultTransport) step(name string) (FaultKind, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ops++
	t.opLog = append(t.opLog, TransportOp{Index: t.ops, Name: name})
	for i, f := range t.faults {
		if t.ops == f.Op || (f.Sticky && t.ops >= f.Op) {
			if !f.Sticky {
				t.faults = append(t.faults[:i], t.faults[i+1:]...)
			}
			return f.Kind, true
		}
	}
	return 0, false
}

func (t *FaultTransport) stall(ctx context.Context) {
	d := t.StallDelay
	if d == 0 {
		d = 2 * time.Second
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
}

func (t *FaultTransport) Open(ctx context.Context, from, version uint64) (Stream, error) {
	kind, fire := t.step("open")
	if fire {
		switch kind {
		case FaultStall:
			t.stall(ctx)
		default:
			return nil, fmt.Errorf("replica: injected fault: %s on open", kind)
		}
	}
	st, err := t.Base.Open(ctx, from, version)
	if err != nil {
		return nil, err
	}
	return &faultStream{t: t, ctx: ctx, base: st}, nil
}

type faultStream struct {
	t    *FaultTransport
	ctx  context.Context
	base Stream
}

func (s *faultStream) Next() (Frame, error) {
	kind, fire := s.t.step("next")
	if fire {
		switch kind {
		case FaultDrop:
			return Frame{}, fmt.Errorf("replica: injected fault: connection reset")
		case FaultTruncate:
			return Frame{}, io.ErrUnexpectedEOF
		case FaultStall:
			s.t.stall(s.ctx)
		}
	}
	fr, err := s.base.Next()
	if err != nil {
		return fr, err
	}
	if fire && kind == FaultCorrupt {
		if len(fr.Payload) > 0 {
			fr.Payload[len(fr.Payload)/2] ^= 0x40
		} else {
			fr.crc ^= 0x1 // nothing to flip in the payload; corrupt the CRC
		}
	}
	return fr, err
}

func (s *faultStream) Close() error { return s.base.Close() }
