// Streaming: build position histograms straight from an XML byte
// stream — no document tree in memory — then estimate from them. This
// is the ingest path for databases whose documents exceed RAM: memory
// is bounded by document depth plus the g×g histograms.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	"xmlest"
	"xmlest/internal/core"
	"xmlest/internal/datagen"
	"xmlest/internal/stream"
	"xmlest/internal/xmltree"
)

func main() {
	// Serialize a generated bibliography to raw XML bytes, standing in
	// for a large file on disk.
	tree := datagen.GenerateDBLP(datagen.DBLPConfig{Seed: 2002, Scale: 0.05})
	var buf bytes.Buffer
	if err := xmltree.WriteXML(&buf, tree, tree.Root()); err != nil {
		log.Fatal(err)
	}
	doc := buf.Bytes()
	src := func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(doc)), nil
	}

	res, err := stream.Build(src, 10, []stream.EventPredicate{
		stream.TagPred{Tag: "article"},
		stream.TagPred{Tag: "author"},
		stream.TagPred{Tag: "cite"},
		stream.ContentPrefixPred{Alias: "conf", Tag: "cite", Prefix: "conf"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d elements (%.1f MB XML), max depth %d\n",
		res.Nodes, float64(len(doc))/1e6, res.MaxDepth)
	fmt.Printf("histograms built without materializing the tree:\n")
	for name, h := range res.Hists {
		fmt.Printf("  %-12s total %8.0f  (%d non-zero cells, %d bytes)\n",
			name, h.Total(), h.NonZero(), h.StorageBytes())
	}

	est, err := core.EstimateAncestorBased(res.Hists["tag=article"], res.Hists["tag=author"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narticle//author estimated from streamed histograms: %.0f\n", est.Total())

	// Streamed ingest lands as a shard: wrap the histograms into a
	// summary-only shard of a live database, and twig estimates
	// immediately reflect the streamed documents — still without ever
	// materializing their tree.
	db, err := xmlest.Open(bytes.NewReader(doc)) // a small resident shard
	if err != nil {
		log.Fatal(err)
	}
	db.AddAllTagPredicates()
	facade, err := db.NewEstimator(xmlest.Options{GridSize: 10})
	if err != nil {
		log.Fatal(err)
	}
	before, _ := facade.Estimate("//article//author")
	if _, _, err := stream.AppendShard(db.Store(), src, 10, []stream.EventPredicate{
		stream.TagPred{Tag: "article"},
		stream.TagPred{Tag: "author"},
	}); err != nil {
		log.Fatal(err)
	}
	after, err := facade.Estimate("//article//author")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live estimate before streamed shard %.0f, after %.0f (%d shards)\n",
		before.Estimate, after.Estimate, facade.ShardCount())
}
