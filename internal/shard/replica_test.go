package shard

import (
	"bytes"
	"strings"
	"testing"

	"xmlest/internal/wal"
)

// shipAll drains the leader's durable WAL tail after `from` into
// copied records, the way a transport would deliver them.
func shipAll(t *testing.T, leader *DurableStore, from uint64) []wal.Record {
	t.Helper()
	var recs []wal.Record
	_, err := leader.ReadDurableWAL(from, func(rec wal.Record) error {
		cp := wal.Record{Seq: rec.Seq, Version: rec.Version}
		for _, d := range rec.Docs {
			cp.Docs = append(cp.Docs, bytes.Clone(d))
		}
		recs = append(recs, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("ReadDurableWAL: %v", err)
	}
	return recs
}

// TestReplicatedTailBitIdentical is the cross-node twin of
// TestCrashRecoveryBitIdentical: a follower bootstrapped with the same
// recipe, fed the leader's WAL records through ApplyReplicated,
// converges to bit-identical estimates at the same serving version.
func TestReplicatedTailBitIdentical(t *testing.T) {
	leader, err := OpenDurable(t.TempDir(), bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	const batches = 5
	for i := 0; i < batches; i++ {
		if _, _, err := leader.AppendDocs(batchDocs(i)); err != nil {
			t.Fatal(err)
		}
	}

	follower, err := OpenDurable(t.TempDir(), bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	recs := shipAll(t, leader, follower.DurableSeq())
	if len(recs) != batches {
		t.Fatalf("shipped %d records, want %d", len(recs), batches)
	}
	// Apply in two batches to exercise the grouped install.
	if err := follower.ApplyReplicated(recs[:2]); err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplyReplicated(recs[2:]); err != nil {
		t.Fatal(err)
	}

	if lv, fv := leader.ServingVersion(), follower.ServingVersion(); lv != fv {
		t.Fatalf("leader version %d != follower version %d", lv, fv)
	}
	if ls, fs := leader.DurableSeq(), follower.DurableSeq(); ls != fs {
		t.Fatalf("leader durable seq %d != follower durable seq %d", ls, fs)
	}
	want := estimateAll(t, leader.Store(), durableTestOpts)
	requireBitIdentical(t, estimateAll(t, follower.Store(), durableTestOpts), want, "replicated tail")

	// A follower restart recovers the applied records from its own WAL
	// and keeps serving the same estimates — and resumes from its own
	// durable watermark, not zero.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicatedFollowerRestartResumes applies half the tail, restarts
// the follower, and resumes from its durable watermark.
func TestReplicatedFollowerRestartResumes(t *testing.T) {
	leader, err := OpenDurable(t.TempDir(), bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	const batches = 6
	for i := 0; i < batches; i++ {
		if _, _, err := leader.AppendDocs(batchDocs(i)); err != nil {
			t.Fatal(err)
		}
	}

	fdir := t.TempDir()
	follower, err := OpenDurable(fdir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	recs := shipAll(t, leader, 0)
	if err := follower.ApplyReplicated(recs[:3]); err != nil {
		t.Fatal(err)
	}
	resumeAt := follower.DurableSeq()
	if resumeAt != recs[2].Seq {
		t.Fatalf("durable watermark %d, want %d", resumeAt, recs[2].Seq)
	}
	// Crash (no Close) and reopen: the watermark must survive.
	follower = nil
	reopened, err := OpenDurable(fdir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.DurableSeq(); got != resumeAt {
		t.Fatalf("reopened durable watermark %d, want %d", got, resumeAt)
	}
	if err := reopened.ApplyReplicated(shipAll(t, leader, reopened.DurableSeq())); err != nil {
		t.Fatal(err)
	}
	want := estimateAll(t, leader.Store(), durableTestOpts)
	requireBitIdentical(t, estimateAll(t, reopened.Store(), durableTestOpts), want, "resumed follower")
	if lv, fv := leader.ServingVersion(), reopened.ServingVersion(); lv != fv {
		t.Fatalf("leader version %d != follower version %d", lv, fv)
	}
}

// TestReplicatedSnapshotCatchUp covers the checkpoint-aware path: a
// pure-ingest leader checkpoints (truncating its WAL), so a fresh
// follower cannot tail from zero — it must install the shipped
// snapshot, then the remaining tail, and still match bit-identically.
func TestReplicatedSnapshotCatchUp(t *testing.T) {
	leader, err := OpenDurable(t.TempDir(), nil, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	for i := 0; i < 4; i++ {
		if _, _, err := leader.AppendDocs(batchDocs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 7; i++ {
		if _, _, err := leader.AppendDocs(batchDocs(i)); err != nil {
			t.Fatal(err)
		}
	}

	follower, err := OpenDurable(t.TempDir(), nil, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	man, files, need, err := leader.SnapshotForReplica(follower.DurableSeq(), follower.ServingVersion())
	if err != nil {
		t.Fatal(err)
	}
	if !need {
		t.Fatal("leader did not offer a snapshot to a follower behind the truncation point")
	}
	if err := follower.ApplySnapshot(man, files); err != nil {
		t.Fatal(err)
	}
	if got := follower.DurableSeq(); got != man.WALSeq {
		t.Fatalf("post-snapshot watermark %d, want %d", got, man.WALSeq)
	}
	if err := follower.ApplyReplicated(shipAll(t, leader, follower.DurableSeq())); err != nil {
		t.Fatal(err)
	}
	want := estimateAll(t, leader.Store(), durableTestOpts)
	requireBitIdentical(t, estimateAll(t, follower.Store(), durableTestOpts), want, "snapshot catch-up")
	if lv, fv := leader.ServingVersion(), follower.ServingVersion(); lv != fv {
		t.Fatalf("leader version %d != follower version %d", lv, fv)
	}

	// Once caught up, no snapshot is offered.
	if _, _, need, err := leader.SnapshotForReplica(follower.DurableSeq(), follower.ServingVersion()); err != nil || need {
		t.Fatalf("caught-up follower offered a snapshot (need=%v err=%v)", need, err)
	}
}

// TestSnapshotForReplicaForcesCheckpointForFreshFollower: a leader
// with a bootstrap corpus but no checkpoint yet must not let a fresh
// follower tail from zero — the corpus was never WAL-logged.
func TestSnapshotForReplicaForcesCheckpointForFreshFollower(t *testing.T) {
	leader, err := OpenDurable(t.TempDir(), bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if _, _, err := leader.AppendDocs(batchDocs(0)); err != nil {
		t.Fatal(err)
	}
	man, files, need, err := leader.SnapshotForReplica(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !need {
		t.Fatal("fresh follower was not offered a snapshot despite un-logged bootstrap shards")
	}
	if len(man.Shards) == 0 || len(files) != len(man.Shards) {
		t.Fatalf("snapshot manifest has %d shards, %d files", len(man.Shards), len(files))
	}

	// A fresh follower with no bootstrap converges through the snapshot.
	follower, err := OpenDurable(t.TempDir(), nil, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if err := follower.ApplySnapshot(man, files); err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplyReplicated(shipAll(t, leader, follower.DurableSeq())); err != nil {
		t.Fatal(err)
	}
	want := estimateAll(t, leader.Store(), durableTestOpts)
	requireBitIdentical(t, estimateAll(t, follower.Store(), durableTestOpts), want, "fresh follower")
}

// TestApplyRefusals: the follower refuses state transitions that can
// only mean divergence, loudly, rather than serving silently wrong
// estimates.
func TestApplyRefusals(t *testing.T) {
	leader, err := OpenDurable(t.TempDir(), nil, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	for i := 0; i < 3; i++ {
		if _, _, err := leader.AppendDocs(batchDocs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	man, files, _, err := leader.SnapshotForReplica(0, 1)
	if err != nil {
		t.Fatal(err)
	}

	follower, err := OpenDurable(t.TempDir(), nil, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	// Grid mismatch is refused outright.
	badGrid := *man
	badGrid.GridSize = man.GridSize + 1
	if err := follower.ApplySnapshot(&badGrid, files); err == nil || !strings.Contains(err.Error(), "grid") {
		t.Fatalf("grid mismatch not refused: %v", err)
	}
	// A corrupt shard file is refused before anything installs.
	if len(man.Shards) > 0 {
		corrupt := make(map[string][]byte, len(files))
		for k, v := range files {
			corrupt[k] = bytes.Clone(v)
		}
		name := man.Shards[0].File
		corrupt[name][len(corrupt[name])/2] ^= 0x1
		if err := follower.ApplySnapshot(man, corrupt); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("corrupt snapshot file not refused: %v", err)
		}
	}
	// The clean snapshot installs.
	if err := follower.ApplySnapshot(man, files); err != nil {
		t.Fatal(err)
	}
	// A record whose version does not advance the serving version is
	// refused (a diverged or replayed-out-of-order stream).
	stale := []wal.Record{{Seq: follower.DurableSeq() + 1, Version: follower.ServingVersion(), Docs: batchDocs(9)}}
	if err := follower.ApplyReplicated(stale); err == nil || !strings.Contains(err.Error(), "advance") {
		t.Fatalf("version-regressing record not refused: %v", err)
	}
	// A snapshot behind the follower's version is refused.
	for i := 3; i < 6; i++ {
		if _, _, err := leader.AppendDocs(batchDocs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := follower.ApplyReplicated(shipAll(t, leader, follower.DurableSeq())); err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplySnapshot(man, files); err == nil || !strings.Contains(err.Error(), "regress") {
		t.Fatalf("regressing snapshot not refused: %v", err)
	}
}
