package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// fuzzSeedPayloads covers the record encoder's branches: single and
// multi-document batches, empty documents, large version numbers.
func fuzzSeedPayloads(f *testing.F) [][]byte {
	f.Helper()
	var out [][]byte
	add := func(rec Record) {
		b, err := EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, b)
	}
	add(Record{Seq: 1, Version: 2, Docs: [][]byte{[]byte("<a/>")}})
	add(Record{Seq: 7, Version: 9, Docs: [][]byte{[]byte("<b>text</b>"), []byte("<c/>")}})
	add(Record{Seq: 1 << 40, Version: 1 << 50, Docs: [][]byte{{}}})
	add(Record{Seq: 3, Version: 0, Docs: [][]byte{bytes.Repeat([]byte("x"), 300)}})
	return out
}

// FuzzWALDecode round-trips the record payload codec: any payload
// DecodeRecord accepts must re-encode and re-decode identically, and
// arbitrary input must never panic or over-allocate (the decoder
// rejects doc counts and lengths beyond the payload's own size before
// allocating).
func FuzzWALDecode(f *testing.F) {
	for _, p := range fuzzSeedPayloads(f) {
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add([]byte{kindBatch})
	f.Add([]byte{kindBatch, 1, 0, 0xff, 0xff, 0xff})
	f.Add([]byte{0xfe, 1, 2, 3})

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return // invalid input is fine; panics are not
		}
		enc, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encode of accepted payload failed: %v", err)
		}
		rec2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if rec2.Seq != rec.Seq || rec2.Version != rec.Version || len(rec2.Docs) != len(rec.Docs) {
			t.Fatalf("round trip changed record: %+v != %+v", rec2, rec)
		}
		for i := range rec.Docs {
			if !bytes.Equal(rec.Docs[i], rec2.Docs[i]) {
				t.Fatalf("doc %d changed across round trip", i)
			}
		}
	})
}

// FuzzWALScanSegment feeds arbitrary segment images to the framed
// scanner: it must never panic, and the valid-prefix length it reports
// must stay within the input.
func FuzzWALScanSegment(f *testing.F) {
	// A well-formed two-record segment as a seed.
	seg := append([]byte{}, segMagic[:]...)
	for i, rec := range []Record{
		{Seq: 1, Version: 2, Docs: [][]byte{[]byte("<a/>")}},
		{Seq: 2, Version: 3, Docs: [][]byte{[]byte("<b/>"), []byte("<c>t</c>")}},
	} {
		payload, err := EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		frame := make([]byte, frameLen)
		binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
		seg = append(seg, append(frame, payload...)...)
		if i == 0 {
			f.Add(append([]byte{}, seg...)) // one-record prefix
		}
	}
	f.Add(seg)
	f.Add(seg[:len(seg)-3]) // torn tail
	f.Add(segMagic[:])
	f.Add([]byte("not a segment"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var prev uint64
		valid := scanSegment(data, func(rec Record) error {
			if rec.Seq == 0 {
				t.Fatal("decoder surfaced a zero sequence")
			}
			_ = prev
			prev = rec.Seq
			return nil
		})
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside input of %d bytes", valid, len(data))
		}
	})
}
