// Sharded-vs-monolithic equivalence: a ShardedEstimator's estimate is
// the sum of per-shard estimates, each over the shard's own uniform
// grid. That decomposition is exact with respect to a monolithic
// estimator built over the concatenated documents on the
// document-aligned grid — the grid whose buckets are the shard grids'
// buckets laid side by side, so no bucket spans a shard boundary.
// Under that grid every estimation formula (pH-Join coefficients,
// coverage fractions, participation collisions) is per-cell local and
// index-translation invariant, and cross-shard cell pairs contribute
// zero, so per-shard sums reproduce the monolithic totals to float
// accumulation order (≤ 1e-9 relative). See DESIGN.md, "Shard
// lifecycle".
package xmlest_test

import (
	"fmt"
	"testing"

	"xmlest"
	"xmlest/internal/core"
	"xmlest/internal/datagen"
	"xmlest/internal/histogram"
	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// alignedGrid builds the document-aligned monolithic grid for a
// sequence of shard trees: each shard contributes its g uniform
// buckets, translated to the shard's position block in the
// concatenated numbering (a shard's documents occupy positions
// offset+1 .. offset+2n, with offset twice the nodes before it).
func alignedGrid(t *testing.T, shardTrees []*xmltree.Tree, g int) histogram.Grid {
	t.Helper()
	bounds := []int{0}
	offset := 0
	for s, tr := range shardTrees {
		if tr.MaxPos < 2*g {
			t.Fatalf("shard %d too small for alignment: maxPos %d < 2g %d", s, tr.MaxPos, 2*g)
		}
		uni := histogram.MustUniformGrid(g, tr.MaxPos)
		ub := uni.Bounds()
		for i := 1; i < g; i++ {
			bounds = append(bounds, offset+ub[i])
		}
		if s < len(shardTrees)-1 {
			// The next shard's documents start at offset' + 1, where
			// offset' adds this shard's 2n labels (its local dummy-root
			// labels 0 and maxPos-1 do not exist in the merged numbering).
			offset += tr.MaxPos - 2
			bounds = append(bounds, offset+1)
		} else {
			bounds = append(bounds, offset+tr.MaxPos)
		}
	}
	grid, err := histogram.NewGrid(bounds)
	if err != nil {
		t.Fatalf("aligned grid: %v", err)
	}
	return grid
}

// runShardEquivalence checks, for every split, that the sharded
// facade estimator and the aligned-grid monolithic core estimator
// agree on every query within 1e-9 relative.
func runShardEquivalence(t *testing.T, docs []*xmltree.Tree, splits map[string][]int, queries []string, g int) {
	t.Helper()
	mono := xmltree.Merge(docs...)
	monoCat := predicate.Spec{AllTags: true}.Build(mono)

	for name, split := range splits {
		t.Run(name, func(t *testing.T) {
			// Group the documents into shard trees per the split.
			var shardTrees []*xmltree.Tree
			next := 0
			for _, size := range split {
				shardTrees = append(shardTrees, xmltree.Merge(docs[next:next+size]...))
				next += size
			}
			if next != len(docs) {
				t.Fatalf("split %v does not cover %d docs", split, len(docs))
			}

			db := xmlest.FromTree(shardTrees[0])
			for _, tr := range shardTrees[1:] {
				if _, err := db.AppendTree(tr); err != nil {
					t.Fatal(err)
				}
			}
			db.AddAllTagPredicates()
			// Both serving paths are pinned to the reference: the default
			// merged-summary path (the store's fold is forced synchronously
			// and must be fresh) and the per-shard fan-out it falls back to.
			est, err := db.NewEstimator(xmlest.Options{GridSize: g})
			if err != nil {
				t.Fatal(err)
			}
			fanout, err := db.NewEstimator(xmlest.Options{GridSize: g, DisableMergedServing: true})
			if err != nil {
				t.Fatal(err)
			}
			if est.ShardCount() != len(split) {
				t.Fatalf("ShardCount = %d, want %d", est.ShardCount(), len(split))
			}
			db.MergeSummaries()
			if info, ok := est.MergedInfo(); !ok || (!info.Fresh && len(split) > 1) {
				t.Fatalf("merged view not fresh after MergeSummaries: %+v", info)
			}

			ref, err := core.NewEstimatorWithGrid(monoCat, alignedGrid(t, shardTrees, g), core.Options{GridSize: g})
			if err != nil {
				t.Fatal(err)
			}

			for _, q := range queries {
				got, err := est.Estimate(q)
				if err != nil {
					t.Fatalf("sharded %s: %v", q, err)
				}
				fo, err := fanout.Estimate(q)
				if err != nil {
					t.Fatalf("fan-out %s: %v", q, err)
				}
				want, err := ref.EstimateTwig(pattern.MustParse(q))
				if err != nil {
					t.Fatalf("monolithic %s: %v", q, err)
				}
				relClose(t, fmt.Sprintf("%s shards=%d merged", q, len(split)), got.Estimate, want.Estimate)
				relClose(t, fmt.Sprintf("%s shards=%d fanout", q, len(split)), fo.Estimate, want.Estimate)
				relClose(t, fmt.Sprintf("%s shards=%d merged-vs-fanout", q, len(split)), got.Estimate, fo.Estimate)
				if want.Estimate <= 0 {
					t.Errorf("%s: degenerate reference estimate %v", q, want.Estimate)
				}
			}
		})
	}
}

var equivalenceSplits = map[string][]int{
	"shards=1": {7},
	"shards=2": {4, 3},
	"shards=7": {1, 1, 1, 1, 1, 1, 1},
}

// TestShardedMatchesMonolithicDBLP pins sharded estimates to the
// aligned-grid monolithic estimator on the Table 2 patterns (plus a
// branching twig) over seven DBLP-shaped documents.
func TestShardedMatchesMonolithicDBLP(t *testing.T) {
	docs := make([]*xmltree.Tree, 7)
	for i := range docs {
		docs[i] = datagen.GenerateDBLP(datagen.DBLPConfig{Seed: int64(100 + i), Scale: 0.01})
	}
	queries := make([]string, 0, len(table2Pairs)+1)
	for _, q := range table2Pairs {
		queries = append(queries, "//"+q.anc[4:]+"//"+q.desc[4:])
	}
	queries = append(queries, "//article[.//author]//cite")
	runShardEquivalence(t, docs, equivalenceSplits, queries, 10)
}

// TestShardedMatchesMonolithicHier does the same on the Table 4
// patterns over seven synthetic manager/department/employee documents.
func TestShardedMatchesMonolithicHier(t *testing.T) {
	docs := make([]*xmltree.Tree, 7)
	for i := range docs {
		docs[i] = datagen.GenerateHier(datagen.HierConfig{Seed: int64(300 + i), Scale: 0.4})
	}
	queries := make([]string, 0, len(table4Pairs))
	for _, q := range table4Pairs {
		queries = append(queries, "//"+q.anc[4:]+"//"+q.desc[4:])
	}
	runShardEquivalence(t, docs, equivalenceSplits, queries, 10)
}
