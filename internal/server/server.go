// Package server is the estimation daemon: an HTTP/JSON API over the
// xmlest Database/Estimator facade that answers answer-size estimates
// at microsecond latency while ingest mutates the corpus underneath.
//
// Endpoints:
//
//	POST /estimate       {"pattern": "..."} or {"patterns": ["...", ...]}
//	POST /append         raw XML body, or {"documents": ["<a/>", ...]} (one shard)
//	POST /append-stream  raw XML body of any size; spooled to disk and
//	                     summarized in two streaming passes (one
//	                     summary-only shard; all-tags vocabulary only)
//	POST /compact        optional {"max_shards": n}
//	GET  /shards    serving shard set
//	GET  /stats     corpus stats + per-endpoint QPS and p50/p95/p99
//	GET  /healthz   liveness (503 while draining)
//
// Serving guarantees mirror the shard store's: every /estimate response
// (batched or not) is computed against one atomically-loaded snapshot
// and reports that snapshot's version; /append and /compact install new
// snapshots without ever blocking readers. Ingest is backpressured —
// at most Config.MaxInflightAppends run at once, the rest get 503 with
// Retry-After — while the estimate fast path takes no semaphore at
// all. Shutdown drains in-flight requests and can persist an XQS
// snapshot for the next boot.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"xmlest"
	"xmlest/internal/accuracy"
	"xmlest/internal/metrics"
	"xmlest/internal/replica"
	"xmlest/internal/trace"
	"xmlest/internal/version"
)

// Config tunes the daemon. The zero value serves on DefaultAddr with
// default options and no auto-compaction.
type Config struct {
	// Addr is the listen address ("" means DefaultAddr).
	Addr string

	// Options configures the served estimator; validated at boot.
	Options xmlest.Options

	// MaxInflightAppends bounds concurrent /append requests (ingest
	// backpressure); excess requests receive 503 + Retry-After rather
	// than queue without bound. The default is sized for group commit:
	// admitted appends overlap their parse work on the ingest pool and
	// then wait together in the commit queue, where everything waiting
	// shares one fsync — so the bound is a queue-depth cap, not a
	// concurrency tax. 0 means DefaultMaxInflightAppends; negative is
	// rejected.
	MaxInflightAppends int

	// MaxBatchPatterns bounds the patterns per /estimate request.
	// 0 means DefaultMaxBatchPatterns; negative is rejected.
	MaxBatchPatterns int

	// MaxBodyBytes bounds request bodies. 0 means DefaultMaxBodyBytes;
	// negative is rejected.
	MaxBodyBytes int64

	// MaxStreamBytes bounds /append-stream bodies, separately from
	// MaxBodyBytes: streamed documents are spooled to disk and scanned
	// with memory bounded by depth, so they may be far larger than any
	// buffered body. 0 means DefaultMaxStreamBytes; negative is
	// rejected.
	MaxStreamBytes int64

	// AutoCompactInterval, when positive, runs a background compaction
	// round (per CompactionPolicy) that often; compaction rebuilds off
	// the serving path, so estimates are never blocked by it.
	AutoCompactInterval time.Duration

	// CompactionPolicy tunes auto and on-demand compaction; the zero
	// policy uses shard defaults.
	CompactionPolicy xmlest.CompactionPolicy

	// SnapshotPath, when set, persists the estimator's summary (XQS1/2)
	// there during Shutdown.
	SnapshotPath string

	// CheckpointInterval, when positive and the database is durable
	// (xmlest.OpenDurable), runs a background checkpoint that often:
	// shard summaries are persisted and the covered WAL prefix is
	// truncated, bounding both recovery time and log size. 0 disables
	// the loop; graceful shutdown still checkpoints. Ignored for
	// non-durable databases.
	CheckpointInterval time.Duration

	// ReadTimeout, WriteTimeout and IdleTimeout harden the HTTP server
	// against slow or stalled clients (slowloris, dead peers holding
	// connections). Zero means the defaults below; negative is
	// rejected. ReadTimeout covers the whole request read,
	// WriteTimeout the response write (sized generously so a large
	// synchronous /compact is not cut off), IdleTimeout keep-alive
	// idle connections.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration

	// MaxHeaderBytes bounds request headers. 0 means
	// DefaultMaxHeaderBytes; negative is rejected.
	MaxHeaderBytes int

	// DrainDelay is how long Shutdown keeps the listener accepting
	// after /healthz flips to 503, so load-balancer probes can observe
	// the drain before connections start being refused. 0 (the
	// default) closes immediately — right for tests and single-node
	// use; set it to at least one probe interval behind a balancer.
	DrainDelay time.Duration

	// Logger receives serving events as structured records; nil means
	// slog.Default().
	Logger *slog.Logger

	// TraceSample samples 1 in N requests for per-stage pipeline
	// tracing (histograms in /metrics, stage breakdowns in the
	// slow-request log). 0 or negative disables per-request tracing;
	// the always-on append-pipeline histograms are unaffected.
	TraceSample int

	// SlowRequest logs any request slower than this threshold
	// (rate-limited, with the stage breakdown when the request was
	// sampled). 0 disables the slow-request log.
	SlowRequest time.Duration

	// ShadowSample samples 1 in N served estimates for shadow execution:
	// the sampled pattern is exactly counted against a pinned snapshot on
	// a bounded background pool and the observed q-error feeds the
	// accuracy families in /metrics and the accuracy section of /stats.
	// The serving path never blocks on it — a full queue drops the
	// sample. 0 or negative disables shadow execution.
	ShadowSample int

	// ShadowBudget is the per-shadow-execution wall-clock budget; an
	// execution that exceeds it is aborted and counted as a deadline
	// miss. 0 means DefaultShadowBudget; negative is rejected.
	ShadowBudget time.Duration

	// FollowURL, when set, boots the daemon as a read-only follower
	// replicating from the leader at this base URL: the WAL tail is
	// streamed and applied at the leader's recorded versions, mutations
	// (/append, /append-stream, /compact) are refused with a pointer to
	// the leader, and /healthz degrades to "degraded"/"replication" when
	// the leader has been silent past StalenessBudget — reads keep
	// serving the last durably applied state either way. Requires a
	// durable database (OpenDurable).
	FollowURL string

	// StalenessBudget is how long the leader may be silent before a
	// follower reports itself stale. 0 means DefaultStalenessBudget;
	// negative is rejected. Ignored unless FollowURL is set.
	StalenessBudget time.Duration
}

// Defaults for the zero Config.
const (
	DefaultAddr = "127.0.0.1:8080"
	// DefaultMaxInflightAppends admits enough concurrent appends for
	// group commit to amortize fsyncs well: admitted requests parse in
	// parallel (bounded by the ingest pool) and queue at the committer,
	// so a deep bound costs queue memory, not lock contention. The old
	// bound of 4 effectively serialized the write path — each append
	// held its own fsync — capping groups at the bound.
	DefaultMaxInflightAppends = 64
	DefaultMaxBatchPatterns   = 256
	DefaultMaxBodyBytes       = 32 << 20
	DefaultMaxStreamBytes     = 1 << 30
	DefaultReadTimeout        = time.Minute
	DefaultWriteTimeout       = 5 * time.Minute
	DefaultIdleTimeout        = 2 * time.Minute
	DefaultMaxHeaderBytes     = 1 << 20
	// DefaultShadowBudget bounds one shadow execution. Exact counting of
	// a hostile twig can be combinatorial; 200ms caps the worst case at
	// a tiny fraction of a worker's time without starving verification
	// of ordinary patterns (which count in microseconds).
	DefaultShadowBudget = 200 * time.Millisecond
	// DefaultStalenessBudget is how long a follower tolerates leader
	// silence before reporting itself stale. Generous enough to ride out
	// a leader restart; short enough that monitoring notices a real
	// outage within a scrape or two.
	DefaultStalenessBudget = 30 * time.Second
)

// Checkpoint-retry backoff bounds (see checkpointLoop): consecutive
// failures double the delay from the configured interval up to
// maxCheckpointBackoffMult times it, capped at maxCheckpointBackoff.
const (
	maxCheckpointBackoffMult = 32
	maxCheckpointBackoff     = 5 * time.Minute
)

// withDefaults validates and fills in the zero fields.
func (c Config) withDefaults() (Config, error) {
	if c.Addr == "" {
		c.Addr = DefaultAddr
	}
	if c.MaxInflightAppends == 0 {
		c.MaxInflightAppends = DefaultMaxInflightAppends
	}
	if c.MaxBatchPatterns == 0 {
		c.MaxBatchPatterns = DefaultMaxBatchPatterns
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxStreamBytes == 0 {
		c.MaxStreamBytes = DefaultMaxStreamBytes
	}
	if c.MaxInflightAppends < 0 || c.MaxBatchPatterns < 0 || c.MaxBodyBytes < 0 || c.MaxStreamBytes < 0 {
		return c, fmt.Errorf("server: negative limit in config (appends %d, batch %d, body %d, stream %d)",
			c.MaxInflightAppends, c.MaxBatchPatterns, c.MaxBodyBytes, c.MaxStreamBytes)
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = DefaultReadTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.MaxHeaderBytes == 0 {
		c.MaxHeaderBytes = DefaultMaxHeaderBytes
	}
	if c.ReadTimeout < 0 || c.WriteTimeout < 0 || c.IdleTimeout < 0 || c.MaxHeaderBytes < 0 {
		return c, fmt.Errorf("server: negative HTTP hardening limit (read %s, write %s, idle %s, header %d)",
			c.ReadTimeout, c.WriteTimeout, c.IdleTimeout, c.MaxHeaderBytes)
	}
	if c.AutoCompactInterval < 0 {
		return c, fmt.Errorf("server: negative auto-compact interval %s", c.AutoCompactInterval)
	}
	if c.CheckpointInterval < 0 {
		return c, fmt.Errorf("server: negative checkpoint interval %s", c.CheckpointInterval)
	}
	if c.DrainDelay < 0 {
		return c, fmt.Errorf("server: negative drain delay %s", c.DrainDelay)
	}
	if c.ShadowBudget == 0 {
		c.ShadowBudget = DefaultShadowBudget
	}
	if c.ShadowBudget < 0 {
		return c, fmt.Errorf("server: negative shadow budget %s", c.ShadowBudget)
	}
	if c.StalenessBudget < 0 {
		return c, fmt.Errorf("server: negative staleness budget %s", c.StalenessBudget)
	}
	if c.FollowURL != "" && c.StalenessBudget == 0 {
		c.StalenessBudget = DefaultStalenessBudget
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c, nil
}

// Server serves estimates over HTTP. Create with New (read-write over a
// Database) or NewFromEstimator (read-only over a loaded summary), then
// either mount Handler on your own listener or call Start/Shutdown.
type Server struct {
	cfg Config
	db  *xmlest.Database // nil in read-only mode
	est *xmlest.Estimator
	reg *metrics.Registry

	log       *slog.Logger
	tracer    *trace.Tracer
	estStages *trace.Recorder
	patterns  *metrics.PatternStats
	// monitor shadow-executes sampled estimates; nil when
	// cfg.ShadowSample disables it. Every use is nil-safe.
	monitor *accuracy.Monitor
	// streamer serves the leader-side /wal/stream endpoint on every
	// durable daemon (any durable node can be followed, a follower
	// included — that is chained replication); nil otherwise.
	streamer *replica.Streamer
	// follower replicates from cfg.FollowURL; nil unless following. Its
	// loop starts in newServer (so Handler()-mounted servers replicate
	// too, like the shadow monitor) and stops in Shutdown.
	follower     *replica.Follower
	followCancel context.CancelFunc
	followDone   chan struct{}
	// lastDegraded is the degraded component last observed (""
	// healthy), so transitions log exactly once in each direction.
	lastDegraded atomic.Pointer[string]

	appendSem chan struct{}
	mux       *http.ServeMux

	httpSrv  *http.Server
	listener net.Listener

	draining    atomic.Bool
	loopCancel  context.CancelFunc
	loopDone    chan struct{}
	autoMerges  atomic.Uint64 // shards merged away by the auto-compaction loop
	autoRounds  atomic.Uint64 // auto-compaction rounds run
	cpRounds    atomic.Uint64 // background checkpoint rounds run
	cpFailures  atomic.Uint64 // background checkpoint rounds that failed
	appendsSeen atomic.Uint64 // documents accepted via /append
}

// New builds a read-write server over a database: /append lands new
// shards and /compact (plus the optional auto-compaction loop) merges
// them. Estimator construction validates cfg.Options, so a bad daemon
// config fails here, at boot.
func New(db *xmlest.Database, cfg Config) (*Server, error) {
	est, err := db.NewEstimator(cfg.Options)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return newServer(db, est, cfg)
}

// NewFromEstimator builds a read-only server over a loaded estimator
// (for example, from an XQS summary blob): /estimate, /shards, /stats
// and /healthz serve; /append and /compact return 403.
func NewFromEstimator(est *xmlest.Estimator, cfg Config) (*Server, error) {
	if est == nil {
		return nil, errors.New("server: nil estimator")
	}
	return newServer(nil, est, cfg)
}

func newServer(db *xmlest.Database, est *xmlest.Estimator, cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		db:        db,
		est:       est,
		reg:       metrics.NewRegistry(),
		log:       cfg.Logger,
		patterns:  metrics.NewPatternStats(0),
		appendSem: make(chan struct{}, cfg.MaxInflightAppends),
	}
	empty := ""
	s.lastDegraded.Store(&empty)
	s.estStages = trace.NewRecorder("xqest_estimate_stage_seconds",
		"Estimate path stage durations (sampled).", trace.EstimateStages...)
	s.tracer = trace.New(trace.Config{
		SampleEvery:   cfg.TraceSample,
		SlowThreshold: cfg.SlowRequest,
		Logger:        cfg.Logger,
		Recorder:      s.estStages,
	})
	s.reg.Register(metrics.CollectorFunc(s.collectServer))
	s.reg.Register(s.estStages)
	s.reg.Register(s.patterns)
	if cfg.ShadowSample > 0 {
		// Started here rather than in Start so Handler()-mounted servers
		// (tests, embedders) get shadow execution too; Shutdown stops the
		// workers.
		s.monitor = accuracy.NewMonitor(accuracy.MonitorConfig{
			SampleEvery: cfg.ShadowSample,
			Budget:      cfg.ShadowBudget,
			Patterns:    s.patterns,
		})
		s.reg.Register(s.monitor)
	}
	if db != nil {
		for _, c := range db.Collectors() {
			s.reg.Register(c)
		}
	}
	if cfg.FollowURL != "" && (db == nil || !db.Durable()) {
		return nil, errors.New("server: FollowURL requires a durable database (the follower applies the leader's WAL into its own)")
	}
	if db != nil && db.Durable() {
		s.streamer = replica.NewStreamer(db.DurableBackend(), replica.StreamerOptions{
			WriteTimeout: cfg.WriteTimeout,
			Logger:       cfg.Logger,
		})
		s.reg.Register(s.streamer)
	}
	if cfg.FollowURL != "" {
		s.follower = replica.NewFollower(
			&replica.HTTPTransport{Base: cfg.FollowURL},
			db.DurableBackend(),
			replica.FollowerOptions{
				Upstream:        cfg.FollowURL,
				StalenessBudget: cfg.StalenessBudget,
				Logger:          cfg.Logger,
			})
		s.reg.Register(s.follower)
		ctx, cancel := context.WithCancel(context.Background())
		s.followCancel = cancel
		s.followDone = make(chan struct{})
		go func() {
			defer close(s.followDone)
			s.follower.Run(ctx)
		}()
	}
	s.mux = http.NewServeMux()
	s.mux.Handle("/estimate", s.instrument("estimate", http.MethodPost, cfg.MaxBodyBytes, s.handleEstimate))
	s.mux.Handle("/append", s.instrument("append", http.MethodPost, cfg.MaxBodyBytes, s.handleAppend))
	s.mux.Handle("/append-stream", s.instrument("append-stream", http.MethodPost, cfg.MaxStreamBytes, s.handleAppendStream))
	s.mux.Handle("/compact", s.instrument("compact", http.MethodPost, cfg.MaxBodyBytes, s.handleCompact))
	s.mux.Handle("/shards", s.instrument("shards", http.MethodGet, cfg.MaxBodyBytes, s.handleShards))
	s.mux.Handle("/stats", s.instrument("stats", http.MethodGet, cfg.MaxBodyBytes, s.handleStats))
	s.mux.Handle("/healthz", s.instrument("healthz", http.MethodGet, cfg.MaxBodyBytes, s.handleHealthz))
	s.mux.Handle("/metrics", s.instrument("metrics", http.MethodGet, cfg.MaxBodyBytes, s.handleMetrics))
	if s.streamer != nil {
		s.mux.Handle(replica.StreamPath, s.instrument("wal-stream", http.MethodGet, cfg.MaxBodyBytes, s.streamer.ServeHTTP))
	}
	return s, nil
}

// collectServer exports the server's own families: build identity, Go
// runtime stats, drain state, and the background-loop counters.
func (s *Server) collectServer(e *metrics.Expo) {
	bi := version.Get()
	e.Gauge("xqest_build_info", "Build identity (value is always 1; identity is in the labels).", 1,
		"version", bi.Version, "revision", bi.Revision, "go_version", bi.GoVersion)
	metrics.CollectGoRuntime(e)
	draining := 0.0
	if s.draining.Load() {
		draining = 1
	}
	e.Gauge("xqest_draining", "1 while graceful shutdown drains in-flight requests.", draining)
	e.Counter("xqest_appended_docs_total", "Documents accepted via /append and /append-stream.", float64(s.appendsSeen.Load()))
	e.Counter("xqest_autocompact_rounds_total", "Auto-compaction rounds run.", float64(s.autoRounds.Load()))
	e.Counter("xqest_autocompact_merged_total", "Shards merged away by auto-compaction.", float64(s.autoMerges.Load()))
	e.Counter("xqest_checkpoint_rounds_total", "Background checkpoint rounds run.", float64(s.cpRounds.Load()))
}

// Handler returns the daemon's routed handler, for mounting on an
// external listener (tests use httptest.NewServer(s.Handler())). The
// auto-compaction loop only runs under Start.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the per-endpoint instrumentation registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// ReadOnly reports whether the server has no database to mutate.
func (s *Server) ReadOnly() bool { return s.db == nil }

// Start listens on cfg.Addr, begins serving in a background goroutine,
// and starts the auto-compaction loop when configured. It returns the
// bound address (useful with ":0").
func (s *Server) Start() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.listener = ln
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
		MaxHeaderBytes:    s.cfg.MaxHeaderBytes,
	}
	needCompact := s.cfg.AutoCompactInterval > 0 && s.db != nil
	needCheckpoint := s.cfg.CheckpointInterval > 0 && s.db != nil && s.db.Durable()
	if needCompact || needCheckpoint {
		ctx, cancel := context.WithCancel(context.Background())
		s.loopCancel = cancel
		s.loopDone = make(chan struct{})
		go func() {
			defer close(s.loopDone)
			var wg sync.WaitGroup
			if needCompact {
				wg.Add(1)
				go func() { defer wg.Done(); s.autoCompactLoop(ctx) }()
			}
			if needCheckpoint {
				wg.Add(1)
				go func() { defer wg.Done(); s.checkpointLoop(ctx) }()
			}
			wg.Wait()
		}()
	}
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.log.Error("serve failed", "err", err)
		}
	}()
	s.log.Info("serving",
		"addr", "http://"+ln.Addr().String(),
		"shards", s.est.ShardCount(),
		"version", s.est.Version(),
		"read_only", s.ReadOnly(),
		"build", version.String())
	return ln.Addr(), nil
}

// Shutdown gracefully stops a Started server: new /healthz probes turn
// 503 and — after cfg.DrainDelay, giving load-balancer probes a window
// to observe it while the listener still accepts — the auto-compaction
// loop stops, every in-flight request completes (bounded by ctx), and
// the summary is persisted to cfg.SnapshotPath when set.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.followCancel != nil {
		// Stop replicating first: the loop's open stream closes and no
		// apply can race the database Close below.
		s.followCancel()
		<-s.followDone
	}
	if s.cfg.DrainDelay > 0 {
		select {
		case <-time.After(s.cfg.DrainDelay):
		case <-ctx.Done():
		}
	}
	var errs []error
	if s.loopCancel != nil {
		s.loopCancel()
		// A mid-merge compaction round cannot be cancelled; wait for it
		// only within the drain budget. An abandoned round is harmless —
		// its install either lands atomically or is thrown away with the
		// process.
		select {
		case <-s.loopDone:
		case <-ctx.Done():
			errs = append(errs, fmt.Errorf("server: auto-compact round still running at drain deadline: %w", ctx.Err()))
		}
	}
	if s.httpSrv != nil {
		if err := s.httpSrv.Shutdown(ctx); err != nil {
			errs = append(errs, fmt.Errorf("server: drain: %w", err))
		}
	}
	// After the drain no handler can submit new shadow jobs; queued ones
	// are abandoned (Close never waits on executions beyond their
	// budget).
	s.monitor.Close()
	if s.cfg.SnapshotPath != "" {
		blob, err := s.est.MarshalBinary()
		if err != nil {
			errs = append(errs, fmt.Errorf("server: snapshot: %w", err))
		} else if err := os.WriteFile(s.cfg.SnapshotPath, blob, 0o644); err != nil {
			errs = append(errs, fmt.Errorf("server: snapshot: %w", err))
		} else {
			s.log.Info("persisted summary snapshot",
				"path", s.cfg.SnapshotPath, "bytes", len(blob), "version", s.est.Version())
		}
	}
	// Final durability state, captured before Close seals the layer.
	var finalStats *xmlest.DurabilityStats
	if s.db != nil {
		if ds, ok := s.db.DurabilityStats(); ok {
			finalStats = &ds
		}
	}
	if s.db != nil && s.db.Durable() {
		// Graceful shutdown of a durable daemon is a checkpoint, not a
		// one-shot snapshot: the data directory ends fully checkpointed
		// with an empty WAL, and the next boot replays nothing.
		if err := s.db.Close(); err != nil {
			errs = append(errs, fmt.Errorf("server: final checkpoint: %w", err))
		} else if ds, ok := s.db.DurabilityStats(); ok {
			s.log.Info("final checkpoint",
				"dir", ds.Dir, "version", ds.CheckpointVersion, "wal_seq", ds.CheckpointWALSeq)
		}
	}
	s.logFinalStats(finalStats)
	return errors.Join(errs...)
}

// logFinalStats emits the shutdown stats snapshot: lifetime traffic per
// endpoint plus the durable layer's group-commit and WAL watermarks, so
// a drained daemon leaves a structured record of what it served.
func (s *Server) logFinalStats(ds *xmlest.DurabilityStats) {
	for _, ep := range s.reg.Snapshot() {
		if ep.Requests == 0 {
			continue
		}
		s.log.Info("endpoint totals",
			"endpoint", ep.Name,
			"requests", ep.Requests,
			"errors", ep.Errors,
			"rejected", ep.Rejected,
			"qps", ep.QPS,
			"p50_us", ep.Latency.P50USec,
			"p99_us", ep.Latency.P99USec)
	}
	attrs := []any{
		"uptime", s.reg.Uptime().String(),
		"appended_docs", s.appendsSeen.Load(),
		"untracked_patterns", s.patterns.Untracked(),
	}
	if ds != nil {
		attrs = append(attrs,
			"wal_seq", ds.LastSeq,
			"durable_seq", ds.DurableSeq,
			"commit_groups", ds.GroupCommit.Groups,
			"commit_batches", ds.GroupCommit.Batches,
			"checkpoints", ds.Checkpoints)
	}
	s.log.Info("shutdown stats", attrs...)
}

// autoCompactLoop runs compaction rounds per interval until cancelled.
// Each tick drains: rounds run back-to-back while they find shards to
// merge, so coalesced ingest (which installs on the order of a
// hundred shards per second) cannot outrun the once-per-tick cadence
// and balloon the serving set — unbounded shard counts make every
// estimate's fan-out and every fold slower. Rounds rebuild entirely
// off the serving path, but they still compete for CPU with it, so
// the drain is bounded by a time budget (a quarter of the tick
// interval): when ingest outruns even that much merging, the set is
// allowed to grow until traffic lets compaction catch up — degraded
// estimates beat starved ones. A round that finds nothing is free, so
// draining costs nothing once the set is tidy.
func (s *Server) autoCompactLoop(ctx context.Context) {
	t := time.NewTicker(s.cfg.AutoCompactInterval)
	defer t.Stop()
	budget := s.cfg.AutoCompactInterval / 4
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			deadline := time.Now().Add(budget)
			for s.compactOnce() > 0 && ctx.Err() == nil && time.Now().Before(deadline) {
			}
		}
	}
}

// checkpointLoop persists the serving set per interval until
// cancelled, so the WAL stays short and recovery fast. Checkpoints
// run concurrently with appends and estimates; a batch landing
// mid-round simply stays in the WAL for the next one.
//
// A failed round — disk full, I/O error — does not kill the loop: it
// retries with capped exponential backoff (interval × 2^failures, up
// to min(interval×32, 5m)), so a transient fault costs a few delayed
// checkpoints and a persistent one does not hammer a sick disk. The
// failure count is visible as the "checkpoint" endpoint's error count
// in /stats and as checkpoint_failures in the durability section.
func (s *Server) checkpointLoop(ctx context.Context) {
	interval := s.cfg.CheckpointInterval
	maxDelay := interval * maxCheckpointBackoffMult
	if maxDelay > maxCheckpointBackoff {
		maxDelay = maxCheckpointBackoff
	}
	if maxDelay < interval {
		maxDelay = interval
	}
	delay := interval
	t := time.NewTimer(delay)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if err := s.checkpointOnce(); err != nil {
			delay *= 2
			if delay > maxDelay {
				delay = maxDelay
			}
			s.log.Warn("checkpoint failed, backing off",
				"failures", s.cpFailures.Load(), "retry_in", delay.String(), "err", err)
		} else {
			delay = interval
		}
		t.Reset(delay)
	}
}

// checkpointOnce runs one instrumented checkpoint round.
func (s *Server) checkpointOnce() error {
	done := s.reg.Endpoint("checkpoint").BeginRequest()
	_, err := s.db.Checkpoint()
	done(metrics.OutcomeOf(err != nil))
	s.cpRounds.Add(1)
	if err != nil {
		s.cpFailures.Add(1)
	}
	s.noteDegraded()
	return err
}

// noteDegraded logs degraded-state transitions exactly once per edge:
// Warn when a component fails, Info when it recovers. Safe to call
// from any goroutine that just observed the durable layer.
func (s *Server) noteDegraded() {
	if s.db == nil {
		return
	}
	comp, reason, bad := s.db.Degraded()
	if !bad {
		comp = ""
	}
	if *s.lastDegraded.Load() == comp {
		return
	}
	prev := *s.lastDegraded.Swap(&comp)
	if prev == comp {
		return // another goroutine logged this transition
	}
	if comp != "" {
		s.log.Warn("storage degraded", "component", comp, "reason", reason)
	} else {
		s.log.Info("storage recovered", "component", prev)
	}
}

// compactOnce runs one instrumented auto-compaction round and returns
// how many shards it merged away (0 when nothing qualified or the
// round failed).
func (s *Server) compactOnce() int {
	done := s.reg.Endpoint("autocompact").BeginRequest()
	merged, err := s.db.Compact(s.cfg.CompactionPolicy)
	done(metrics.OutcomeOf(err != nil))
	s.autoRounds.Add(1)
	if err != nil {
		s.log.Error("auto-compact failed", "err", err)
		return 0
	}
	if merged > 0 {
		s.autoMerges.Add(uint64(merged))
		s.log.Info("auto-compact merged shards",
			"merged", merged, "remaining", s.est.ShardCount(), "version", s.est.Version())
	}
	return merged
}

// statusRecorder captures the response status for instrumentation and
// whether anything was written (so panic recovery knows if a 500 can
// still be sent).
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(p)
}

// Flush and Unwrap let the streaming /wal/stream handler work through
// the instrumentation wrapper: Flush forwards chunked writes, Unwrap
// lets http.ResponseController reach the real writer's per-write
// deadline controls.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument enforces the HTTP method, bounds the request body to
// bodyLimit bytes, and records latency, request, error and rejection
// counts per endpoint.
// Deliberate 503s — append backpressure, healthz while draining — are
// rejections, not errors: a saturated-but-healthy daemon must not read
// as error-ridden in /stats.
//
// Every request gets a request ID — the client's X-Request-ID when
// sent, a generated one otherwise — echoed on the response and
// attached to request-scoped log lines, so one slow or failed request
// can be followed from client to server log. 1 in cfg.TraceSample
// requests additionally carries a pipeline Trace in its context; the
// handler's stage steps feed the /metrics stage histograms and the
// slow-request log's breakdown.
//
// It also recovers handler panics: the request gets a 500 (when the
// response has not started), the endpoint's panic counter increments,
// and the stack is logged — one poisoned request must not kill a
// daemon serving thousands of healthy ones.
func (s *Server) instrument(name, method string, bodyLimit int64, h http.HandlerFunc) http.Handler {
	ep := s.reg.Endpoint(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(trace.RequestIDHeader)
		if reqID == "" {
			reqID = trace.NewRequestID()
		}
		w.Header().Set(trace.RequestIDHeader, reqID)
		start := time.Now()
		t := s.tracer.Start()
		if t != nil {
			r = r.WithContext(trace.NewContext(r.Context(), t))
		}
		done := ep.BeginRequest()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				ep.RecordPanic()
				s.log.Error("panic in handler",
					"method", method, "path", r.URL.Path, "request_id", reqID,
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				rec.status = http.StatusInternalServerError
				if !rec.wrote {
					writeError(rec, http.StatusInternalServerError, "internal error")
				}
			}
			switch {
			case rec.status == http.StatusServiceUnavailable:
				done(metrics.Rejected)
			case rec.status >= 400:
				done(metrics.Error)
			default:
				done(metrics.OK)
			}
			s.tracer.Finish(t, name, reqID, time.Since(start), rec.status)
		}()
		if r.Method != method {
			rec.Header().Set("Allow", method)
			writeError(rec, http.StatusMethodNotAllowed, "method "+r.Method+" not allowed")
			return
		}
		r.Body = http.MaxBytesReader(rec, r.Body, bodyLimit)
		h(rec, r)
	})
}
