package cliutil

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"xmlest/internal/server"
)

// statsClient bounds how long a daemon introspection fetch may take —
// these are interactive CLI calls against a local or nearby daemon.
var statsClient = &http.Client{Timeout: 10 * time.Second}

// fetch GETs url and returns the body, mapping transport and non-200
// statuses to one readable error.
func fetch(url string) ([]byte, error) {
	resp, err := statsClient.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// DumpMetrics fetches a running daemon's raw Prometheus exposition and
// writes it verbatim.
func DumpMetrics(w io.Writer, baseURL string) error {
	body, err := fetch(strings.TrimRight(baseURL, "/") + "/metrics")
	if err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ShowStats fetches a running daemon's /stats and pretty-prints the
// serving surface: uptime, corpus shape, per-endpoint traffic, top
// patterns, and (when durable) the WAL/checkpoint state.
func ShowStats(w io.Writer, baseURL string) error {
	body, err := fetch(strings.TrimRight(baseURL, "/") + "/stats")
	if err != nil {
		return err
	}
	var st server.StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("decode /stats: %w", err)
	}

	fmt.Fprintf(w, "daemon %s\n", st.Build)
	fmt.Fprintf(w, "uptime: %s  version: %d  read-only: %v\n",
		(time.Duration(st.UptimeSeconds * float64(time.Second))).Round(time.Second), st.Version, st.ReadOnly)
	fmt.Fprintf(w, "corpus: %d doc(s), %d node(s), %d shard(s); summary %d bytes (grid %d)\n",
		st.Corpus.Docs, st.Corpus.Nodes, st.Corpus.Shards, st.SummaryBytes, st.GridSize)
	if st.Merged != nil {
		fmt.Fprintf(w, "merged serving: enabled=%v fresh=%v covered=%d epoch=%d\n",
			st.Merged.Enabled, st.Merged.Fresh, st.Merged.CoveredShards, st.Merged.Epoch)
	}
	if st.AppendedDocs > 0 || st.AutoCompactions > 0 {
		fmt.Fprintf(w, "ingest: %d doc(s) appended; %d auto-compact round(s), %d shard(s) merged\n",
			st.AppendedDocs, st.AutoCompactions, st.AutoMerged)
	}

	fmt.Fprintf(w, "\n%-14s %10s %7s %8s %9s %9s %9s\n",
		"endpoint", "requests", "errors", "qps", "p50", "p95", "p99")
	for _, ep := range st.Endpoints {
		if ep.Requests == 0 {
			continue
		}
		fmt.Fprintf(w, "%-14s %10d %7d %8.1f %8.1fµ %8.1fµ %8.1fµ\n",
			ep.Name, ep.Requests, ep.Errors, ep.QPS,
			ep.Latency.P50USec, ep.Latency.P95USec, ep.Latency.P99USec)
	}

	if len(st.Patterns) > 0 {
		fmt.Fprintf(w, "\ntop patterns (%d untracked request(s) beyond these):\n", st.UntrackedPatterns)
		for _, p := range st.Patterns {
			fmt.Fprintf(w, "  %8d× %-40s est p50 %.0f  lat p50 %.1fµs",
				p.Requests, p.Pattern, p.Estimate.P50, p.Latency.P50USec)
			if p.QError != nil {
				fmt.Fprintf(w, "  qerr p50 %.2f max %.2f (%d verified)",
					p.QError.P50, p.QError.Max, p.QError.Count)
			}
			fmt.Fprintln(w)
		}
	}

	if a := st.Accuracy; a != nil {
		fmt.Fprintf(w, "\naccuracy (shadow execution, 1 in %d, budget %.0fms):\n", a.SampleEvery, a.BudgetMS)
		fmt.Fprintf(w, "  sampled %d  verified %d  dropped %d  deadline %d  unverifiable %d  failed %d\n",
			a.Sampled, a.Verified, a.Dropped, a.Deadline, a.Unverifiable, a.Failed)
		if a.QError.Count > 0 {
			fmt.Fprintf(w, "  q-error q50 %.3f  q90 %.3f  qmax %.3f   mean rel. err. %.3f\n",
				a.QError.P50, a.QError.P90, a.QError.Max, a.MeanRelErr)
		}
	}

	if st.Durability != nil {
		d := st.Durability
		fmt.Fprintf(w, "\ndurability: %s (fsync %s)\n", d.Dir, d.Fsync)
		fmt.Fprintf(w, "  wal: %d segment(s), %d bytes, last seq %d, durable seq %d\n",
			d.WALSegments, d.WALBytes, d.LastSeq, d.DurableSeq)
		fmt.Fprintf(w, "  checkpoints: %d taken, version %d, wal seq %d, %d failure(s)\n",
			d.Checkpoints, d.CheckpointVersion, d.CheckpointWALSeq, d.CheckpointFailures)
		fmt.Fprintf(w, "  group commit: %d group(s), %d batch(es)\n",
			d.GroupCommit.Groups, d.GroupCommit.Batches)
		if d.Degraded {
			fmt.Fprintf(w, "  DEGRADED: %s (%s)\n", d.DegradedComponent, d.DegradedReason)
		}
	}
	return nil
}
