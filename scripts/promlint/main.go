// Command promlint validates a Prometheus text exposition read from
// stdin: every sample family must carry HELP and TYPE headers,
// histogram bucket counts must be monotone non-decreasing and end in a
// +Inf bucket that matches the family's _count, every histogram family
// must expose _sum and _count samples, counter samples must be
// non-negative, and no family may declare HELP or TYPE more than once.
//
// CI usage:
//
//	curl -s http://127.0.0.1:9200/metrics | go run ./scripts/promlint
//
// Exit status 0 on a clean exposition, 1 with one line per problem
// otherwise.
package main

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

type family struct {
	help, typ int // header counts
	kind      string
	samples   int
	// sawSum / sawCount record that a _sum / _count sample was seen —
	// a histogram family without both is unusable for rate() math.
	sawSum, sawCount bool
}

type bucketState struct {
	prev    float64 // last cumulative bucket count
	last    float64 // +Inf (or final) bucket count
	sawInf  bool
	count   float64
	hasCnt  bool
	ordered bool
}

func baseName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b := strings.TrimSuffix(name, suf); b != name {
			return b
		}
	}
	return name
}

func main() {
	fams := map[string]*family{}
	buckets := map[string]*bucketState{} // keyed by family + label-set sans le
	var problems []string
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				fail("line %d: malformed comment %q", lineNo, line)
				continue
			}
			name := fields[2]
			f := fams[name]
			if f == nil {
				f = &family{}
				fams[name] = f
			}
			switch fields[1] {
			case "HELP":
				f.help++
			case "TYPE":
				f.typ++
				if len(fields) >= 4 {
					f.kind = fields[3]
				}
			}
			continue
		}

		// Sample line: name{labels} value [timestamp]
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			fail("line %d: no value on sample %q", lineNo, line)
			continue
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			fail("line %d: bad value %q", lineNo, valStr)
			continue
		}
		if math.IsNaN(val) {
			fail("line %d: NaN value in %q", lineNo, line)
		}
		name := key
		labels := ""
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name, labels = key[:i], key[i:]
		}
		base := baseName(name)
		f := fams[base]
		if f == nil && fams[name] != nil {
			f, base = fams[name], name
		}
		if f == nil {
			fail("line %d: sample %q has no HELP/TYPE for %q", lineNo, line, base)
			continue
		}
		f.samples++
		if name == base+"_sum" {
			f.sawSum = true
		}
		if name == base+"_count" {
			f.sawCount = true
		}
		// A counter can only ever move up from zero; a negative sample
		// means the exporter is broken (or the family is mistyped).
		if f.kind == "counter" && val < 0 {
			fail("line %d: negative counter sample %q", lineNo, line)
		}

		if strings.HasSuffix(name, "_bucket") {
			le, rest := extractLE(labels)
			if le == "" {
				fail("line %d: bucket sample without le label: %q", lineNo, line)
				continue
			}
			bk := base + rest
			st := buckets[bk]
			if st == nil {
				st = &bucketState{ordered: true}
				buckets[bk] = st
			}
			if val < st.prev {
				fail("line %d: bucket counts not monotone for %s (%v after %v)", lineNo, bk, val, st.prev)
				st.ordered = false
			}
			st.prev, st.last = val, val
			if le == "+Inf" {
				st.sawInf = true
			}
		}
		if strings.HasSuffix(name, "_count") {
			bk := base + labels
			st := buckets[bk]
			if st == nil {
				st = &bucketState{ordered: true}
				buckets[bk] = st
			}
			st.count, st.hasCnt = val, true
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "promlint: read:", err)
		os.Exit(1)
	}

	for name, f := range fams {
		if f.help != 1 {
			fail("family %s: HELP emitted %d times, want exactly once", name, f.help)
		}
		if f.typ != 1 {
			fail("family %s: TYPE emitted %d times, want exactly once", name, f.typ)
		}
		if f.samples == 0 {
			fail("family %s: declared but has no samples", name)
		}
		// Every histogram series must carry its _sum and _count: without
		// them rate() and mean math are impossible, and scrapers treat
		// the family as corrupt.
		if f.kind == "histogram" && f.samples > 0 {
			if !f.sawSum {
				fail("family %s: histogram without a _sum sample", name)
			}
			if !f.sawCount {
				fail("family %s: histogram without a _count sample", name)
			}
		}
	}
	for key, st := range buckets {
		if st.prev == 0 && st.last == 0 && !st.sawInf && !st.hasCnt {
			continue
		}
		if !st.sawInf && st.prev > 0 {
			fail("series %s: no +Inf bucket", key)
		}
		if st.sawInf && st.hasCnt && st.last != st.count {
			fail("series %s: +Inf bucket %v != _count %v", key, st.last, st.count)
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "promlint:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("promlint: ok (%d families)\n", len(fams))
}

// extractLE pulls the le label out of a label set, returning its value
// and the label set with le removed (for grouping buckets of one
// series together).
func extractLE(labels string) (le, rest string) {
	if labels == "" {
		return "", ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, part := range splitLabels(inner) {
		if v, ok := strings.CutPrefix(part, "le="); ok {
			le = strings.Trim(v, `"`)
			continue
		}
		kept = append(kept, part)
	}
	if len(kept) == 0 {
		return le, ""
	}
	return le, "{" + strings.Join(kept, ",") + "}"
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var parts []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(s):
			b.WriteByte(c)
			i++
			b.WriteByte(s[i])
		case c == '"':
			inQuote = !inQuote
			b.WriteByte(c)
		case c == ',' && !inQuote:
			parts = append(parts, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if b.Len() > 0 {
		parts = append(parts, b.String())
	}
	return parts
}
