package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

func TestStructuralJoinFig1(t *testing.T) {
	tr := xmltree.Fig1Document()
	pairs := StructuralJoin(tr, tr.NodesWithTag("faculty"), tr.NodesWithTag("TA"))
	if len(pairs) != 2 {
		t.Fatalf("faculty//TA pairs = %d, want 2", len(pairs))
	}
	for _, p := range pairs {
		if !tr.IsAncestor(p.Anc, p.Desc) {
			t.Errorf("pair (%d,%d) is not ancestor-descendant", p.Anc, p.Desc)
		}
		if tr.Node(p.Anc).Tag != "faculty" || tr.Node(p.Desc).Tag != "TA" {
			t.Errorf("pair has wrong tags")
		}
	}
}

// TestStructuralJoinMatchesCountPairs cross-checks the stack-based join
// against the binary-search counter on random trees.
func TestStructuralJoinMatchesCountPairs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 5+r.Intn(120))
		for _, a := range tr.Tags() {
			for _, d := range tr.Tags() {
				pairs := StructuralJoin(tr, tr.NodesWithTag(a), tr.NodesWithTag(d))
				want := CountPairs(tr, tr.NodesWithTag(a), tr.NodesWithTag(d))
				if int64(len(pairs)) != want {
					t.Logf("seed %d %s//%s: join=%d count=%d", seed, a, d, len(pairs), want)
					return false
				}
				seen := map[[2]xmltree.NodeID]bool{}
				for _, p := range pairs {
					if !tr.IsAncestor(p.Anc, p.Desc) {
						t.Logf("invalid pair")
						return false
					}
					k := [2]xmltree.NodeID{p.Anc, p.Desc}
					if seen[k] {
						t.Logf("duplicate pair")
						return false
					}
					seen[k] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFindTwigMatchesFig1(t *testing.T) {
	tr, resolve := fig1Resolver(t)
	p := pattern.MustParse("//department//faculty[.//TA][.//RA]")
	matches, err := FindTwigMatches(tr, p, resolve, 0)
	if err != nil {
		t.Fatalf("FindTwigMatches: %v", err)
	}
	if len(matches) != 4 {
		t.Fatalf("matches = %d, want 4", len(matches))
	}
	for _, m := range matches {
		if len(m) != 4 {
			t.Fatalf("match arity = %d, want 4", len(m))
		}
		dept, fac, ta, ra := m[0], m[1], m[2], m[3]
		if tr.Node(dept).Tag != "department" || tr.Node(fac).Tag != "faculty" ||
			tr.Node(ta).Tag != "TA" || tr.Node(ra).Tag != "RA" {
			t.Errorf("wrong tags in match")
		}
		if !tr.IsAncestor(dept, fac) || !tr.IsAncestor(fac, ta) || !tr.IsAncestor(fac, ra) {
			t.Errorf("structural constraints violated")
		}
	}
}

func TestFindTwigMatchesLimit(t *testing.T) {
	tr, resolve := fig1Resolver(t)
	p := pattern.MustParse("//faculty//RA")
	all, err := FindTwigMatches(tr, p, resolve, 0)
	if err != nil {
		t.Fatalf("FindTwigMatches: %v", err)
	}
	if len(all) != 6 {
		t.Fatalf("all matches = %d, want 6", len(all))
	}
	limited, err := FindTwigMatches(tr, p, resolve, 2)
	if err != nil {
		t.Fatalf("FindTwigMatches: %v", err)
	}
	if len(limited) != 2 {
		t.Errorf("limited matches = %d, want 2", len(limited))
	}
	// The limited prefix must equal the unlimited enumeration's prefix.
	for i := range limited {
		for k := range limited[i] {
			if limited[i][k] != all[i][k] {
				t.Errorf("limited prefix diverges at match %d", i)
			}
		}
	}
}

func TestFindTwigMatchesChildAxis(t *testing.T) {
	tr, resolve := fig1Resolver(t)
	matches, err := FindTwigMatches(tr, pattern.MustParse("//department/faculty/TA"), resolve, 0)
	if err != nil {
		t.Fatalf("FindTwigMatches: %v", err)
	}
	if len(matches) != 2 {
		t.Fatalf("child-axis matches = %d, want 2", len(matches))
	}
	for _, m := range matches {
		if tr.Node(m[1]).Parent != m[0] || tr.Node(m[2]).Parent != m[1] {
			t.Errorf("child axis violated")
		}
	}
}

// TestFindTwigMatchesCountAgreesWithCountTwig verifies enumeration and
// counting agree on random trees and a mix of patterns.
func TestFindTwigMatchesCountAgreesWithCountTwig(t *testing.T) {
	patterns := []string{"//a//b", "//a[.//b]//c", "//a/b", "//b//b"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 3+r.Intn(50))
		c := predicate.NewCatalog(tr)
		c.AddAllTags()
		resolve := catalogResolver(c)
		for _, src := range patterns {
			p := pattern.MustParse(src)
			count, err := CountTwig(tr, p, resolve)
			if err != nil {
				continue // tag absent in this random tree
			}
			matches, err := FindTwigMatches(tr, p, resolve, 0)
			if err != nil {
				t.Logf("enumerate: %v", err)
				return false
			}
			if float64(len(matches)) != count {
				t.Logf("seed %d %s: enumerated %d, counted %v", seed, src, len(matches), count)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
