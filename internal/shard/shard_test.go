package shard

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"xmlest/internal/core"
	"xmlest/internal/match"
	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// doc builds one small department document with f faculty members, t
// TAs per faculty and one staff member.
func doc(f, tas int) *xmltree.Tree {
	b := xmltree.NewBuilder()
	b.Begin("department")
	for i := 0; i < f; i++ {
		b.Begin("faculty")
		b.Element("name", fmt.Sprintf("f%d", i))
		for k := 0; k < tas; k++ {
			b.Element("TA", "")
		}
		b.End()
	}
	b.Begin("staff")
	b.Element("name", "s")
	b.End()
	b.End()
	return b.Tree()
}

func allTagsSpec() predicate.Spec { return predicate.Spec{AllTags: true} }

var defaultOpts = core.Options{GridSize: 4}

func mustEstimate(t *testing.T, set *Set, src string) core.Result {
	t.Helper()
	p, err := pattern.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := set.EstimateTwig(p, defaultOpts)
	if err != nil {
		t.Fatalf("EstimateTwig(%s): %v", src, err)
	}
	return res
}

func TestAppendIsAdditive(t *testing.T) {
	st := NewStore(allTagsSpec())
	if _, err := st.EnsureSummaries(defaultOpts); err != nil {
		t.Fatal(err)
	}
	d1, d2 := doc(3, 2), doc(5, 1)
	if _, err := st.AppendTree(d1); err != nil {
		t.Fatal(err)
	}
	only1 := mustEstimate(t, st.Current(), "//faculty//TA")

	if _, err := st.AppendTree(d2); err != nil {
		t.Fatal(err)
	}
	both := mustEstimate(t, st.Current(), "//faculty//TA")

	// The second shard's contribution must equal a store holding only d2.
	st2 := NewStore(allTagsSpec())
	if _, err := st2.AppendTree(doc(5, 1)); err != nil {
		t.Fatal(err)
	}
	only2 := mustEstimate(t, st2.Current(), "//faculty//TA")
	if diff := math.Abs(both.Estimate - (only1.Estimate + only2.Estimate)); diff > 1e-9 {
		t.Fatalf("append not additive: both=%v, parts=%v+%v", both.Estimate, only1.Estimate, only2.Estimate)
	}
}

func TestVersionAndSnapshotIsolation(t *testing.T) {
	st := NewStore(allTagsSpec())
	if _, err := st.AppendTree(doc(3, 2)); err != nil {
		t.Fatal(err)
	}
	snap := st.Current()
	v := snap.Version()
	before := mustEstimate(t, snap, "//faculty//TA")

	if _, err := st.AppendTree(doc(4, 4)); err != nil {
		t.Fatal(err)
	}
	if st.Version() != v+1 {
		t.Fatalf("version = %d, want %d", st.Version(), v+1)
	}
	// The old snapshot still answers from its frozen shard set.
	after := mustEstimate(t, snap, "//faculty//TA")
	if after.Estimate != before.Estimate {
		t.Fatalf("snapshot changed: %v -> %v", before.Estimate, after.Estimate)
	}
	if cur := mustEstimate(t, st.Current(), "//faculty//TA"); cur.Estimate <= before.Estimate {
		t.Fatalf("current estimate %v did not grow past %v", cur.Estimate, before.Estimate)
	}
}

func TestDropRemovesContribution(t *testing.T) {
	st := NewStore(allTagsSpec())
	if _, err := st.AppendTree(doc(3, 2)); err != nil {
		t.Fatal(err)
	}
	sh2, err := st.AppendTree(doc(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	before := mustEstimate(t, st.Current(), "//faculty//TA")
	if !st.Drop(sh2.ID()) {
		t.Fatal("Drop: shard not found")
	}
	if st.Drop(sh2.ID()) {
		t.Fatal("Drop twice: want false")
	}
	after := mustEstimate(t, st.Current(), "//faculty//TA")
	if after.Estimate >= before.Estimate {
		t.Fatalf("drop did not shrink estimate: %v -> %v", before.Estimate, after.Estimate)
	}
}

func TestCountAdditiveMatchesMergedExact(t *testing.T) {
	st := NewStore(allTagsSpec())
	trees := []*xmltree.Tree{doc(3, 2), doc(5, 1), doc(2, 6)}
	for _, tr := range trees {
		if _, err := st.AppendTree(tr); err != nil {
			t.Fatal(err)
		}
	}
	p := pattern.MustParse("//faculty//TA")
	got, err := st.Current().Count(p)
	if err != nil {
		t.Fatal(err)
	}
	merged := xmltree.Merge(trees...)
	cat := allTagsSpec().Build(merged)
	want, err := match.CountTwig(merged, p, func(name string) ([]xmltree.NodeID, error) {
		e, err := cat.Get(name)
		if err != nil {
			return nil, err
		}
		return e.Nodes, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sharded count %v != merged count %v", got, want)
	}
}

// TestCompactEquivalentToSingleBuild pins the exactness of compaction:
// compacting shards into one is bit-identical to having appended their
// documents as a single shard, because xmltree.Merge reproduces the
// concatenated numbering.
func TestCompactEquivalentToSingleBuild(t *testing.T) {
	st := NewStore(allTagsSpec())
	if _, err := st.EnsureSummaries(defaultOpts); err != nil {
		t.Fatal(err)
	}
	mk := func() []*xmltree.Tree {
		return []*xmltree.Tree{doc(3, 2), doc(5, 1), doc(2, 6)}
	}
	for _, tr := range mk() {
		if _, err := st.AppendTree(tr); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := st.Compact(CompactionPolicy{TierRatio: 1e9}) // everything in one tier
	if err != nil {
		t.Fatal(err)
	}
	if merged != 3 {
		t.Fatalf("Compact merged %d shards, want 3", merged)
	}
	if st.Current().Len() != 1 {
		t.Fatalf("%d shards after compaction, want 1", st.Current().Len())
	}

	single := NewStore(allTagsSpec())
	if _, err := single.AppendTree(xmltree.Merge(mk()...)); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"//faculty//TA", "//department//faculty[.//TA]//name", "//department//name"} {
		got := mustEstimate(t, st.Current(), q)
		want := mustEstimate(t, single.Current(), q)
		if got.Estimate != want.Estimate {
			t.Fatalf("%s: compacted %v != single-build %v", q, got.Estimate, want.Estimate)
		}
	}
}

func TestCompactionPolicyPlan(t *testing.T) {
	mkShard := func(id uint64, nodes int) *Shard { return &Shard{id: id, nodes: nodes, tree: doc(1, 1), cat: nil} }
	set := &Set{shards: []*Shard{
		mkShard(1, 10000), mkShard(2, 12), mkShard(3, 14), mkShard(4, 9000),
	}}
	group := DefaultCompactionPolicy.plan(set)
	if len(group) != 2 || group[0].id != 2 || group[1].id != 3 {
		t.Fatalf("plan picked %v, want small shards 2 and 3", ids(group))
	}

	// Summary-only shards never compact.
	set2 := &Set{shards: []*Shard{
		{id: 1, nodes: 10}, {id: 2, nodes: 11}, // no tree: summary-only
	}}
	if g := DefaultCompactionPolicy.plan(set2); g != nil {
		t.Fatalf("plan over summary-only shards: %v, want nil", ids(g))
	}

	// Under MaxShards pressure the smallest pair merges even across tiers.
	set3 := &Set{shards: []*Shard{
		mkShard(1, 10), mkShard(2, 1000), mkShard(3, 100000),
	}}
	pol := CompactionPolicy{TierRatio: 2, MinMerge: 2, MaxShards: 2}
	if g := pol.plan(set3); len(g) != 2 || g[0].id != 1 || g[1].id != 2 {
		t.Fatalf("pressure plan picked %v, want shards 1 and 2", ids(g))
	}
}

func ids(shs []*Shard) []uint64 {
	out := make([]uint64, len(shs))
	for i, s := range shs {
		out[i] = s.id
	}
	return out
}

func TestMissingPredicateSemantics(t *testing.T) {
	st := NewStore(allTagsSpec())
	if _, err := st.AppendTree(doc(3, 2)); err != nil {
		t.Fatal(err)
	}
	// Second shard has no TA elements at all.
	b := xmltree.NewBuilder()
	b.Begin("department")
	b.Begin("faculty")
	b.Element("name", "x")
	b.End()
	b.End()
	if _, err := st.AppendTree(b.Tree()); err != nil {
		t.Fatal(err)
	}
	// tag=TA resolves in shard 1 only: estimate works, shard 2 adds zero.
	res := mustEstimate(t, st.Current(), "//faculty//TA")
	if res.Estimate <= 0 {
		t.Fatalf("estimate = %v, want > 0", res.Estimate)
	}
	// A predicate unknown everywhere errors.
	p := pattern.MustParse("//faculty//nosuchtag")
	if _, err := st.Current().EstimateTwig(p, defaultOpts); err == nil {
		t.Fatal("unknown predicate: want error")
	}
}

func TestPreparedRebindAcrossVersions(t *testing.T) {
	st := NewStore(allTagsSpec())
	if _, err := st.AppendTree(doc(3, 2)); err != nil {
		t.Fatal(err)
	}
	p := pattern.MustParse("//faculty//TA")
	pr, err := st.Current().Prepare(p, defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := pr.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	direct := mustEstimate(t, st.Current(), "//faculty//TA")
	if r1.Estimate != direct.Estimate {
		t.Fatalf("prepared %v != direct %v", r1.Estimate, direct.Estimate)
	}
	if pr.Set() != st.Current() {
		t.Fatal("prepared set mismatch")
	}
}

func TestShardSetPersistenceRoundTrip(t *testing.T) {
	st := NewStore(allTagsSpec())
	for _, tr := range []*xmltree.Tree{doc(3, 2), doc(5, 1)} {
		if _, err := st.AppendTree(tr); err != nil {
			t.Fatal(err)
		}
	}
	set := st.Current()
	blob, err := set.Marshal(defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSet(blob)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 || loaded.TotalNodes() != set.TotalNodes() || loaded.TotalDocs() != set.TotalDocs() {
		t.Fatalf("loaded set: len=%d nodes=%d docs=%d", loaded.Len(), loaded.TotalNodes(), loaded.TotalDocs())
	}
	for _, q := range []string{"//faculty//TA", "//department//name"} {
		want := mustEstimate(t, set, q)
		got := mustEstimate(t, loaded, q)
		if got.Estimate != want.Estimate {
			t.Fatalf("%s: loaded %v != original %v", q, got.Estimate, want.Estimate)
		}
	}
	// Summary-only shards cannot count exactly.
	if _, err := loaded.Count(pattern.MustParse("//faculty//TA")); err == nil {
		t.Fatal("Count on summary-only set: want error")
	}
	if _, err := LoadSet([]byte("junk")); err == nil {
		t.Fatal("LoadSet(junk): want error")
	}
}

// TestConcurrentAppendEstimate exercises the snapshot-serving contract
// under the race detector: readers estimate from atomically loaded
// sets while a writer appends, drops and compacts.
func TestConcurrentAppendEstimate(t *testing.T) {
	st := NewStore(allTagsSpec())
	if _, err := st.EnsureSummaries(defaultOpts); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendTree(doc(3, 2)); err != nil {
		t.Fatal(err)
	}
	pinned := st.Current()
	want := mustEstimate(t, pinned, "//faculty//TA").Estimate

	const readers = 4
	const writes = 30
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := pattern.MustParse("//faculty//TA")
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Pinned snapshot: must never change.
				res, err := pinned.EstimateTwig(p, defaultOpts)
				if err != nil {
					errs <- err
					return
				}
				if res.Estimate != want {
					errs <- fmt.Errorf("pinned estimate changed: %v != %v", res.Estimate, want)
					return
				}
				// Live snapshot: must never error.
				if _, err := st.Current().EstimateTwig(p, defaultOpts); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		var appended []uint64
		for i := 0; i < writes; i++ {
			sh, err := st.AppendTree(doc(1+i%4, 1+i%3))
			if err != nil {
				errs <- err
				return
			}
			appended = append(appended, sh.ID())
			switch {
			case i%7 == 3 && len(appended) > 2:
				st.Drop(appended[0])
				appended = appended[1:]
			case i%5 == 4:
				if _, err := st.Compact(DefaultCompactionPolicy); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
