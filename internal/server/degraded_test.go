package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xmlest"
	"xmlest/internal/fsio"
)

// openFaultDurable opens a durable database in dir on the given
// filesystem, bootstrapped with the crash tests' dept1 corpus.
func openFaultDurable(t *testing.T, dir string, fs fsio.FS) *xmlest.Database {
	t.Helper()
	db, err := xmlest.OpenDurable(dir, xmlest.DurableConfig{
		Options:   xmlest.Options{GridSize: 4},
		Bootstrap: durableBootstrap,
		FS:        fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDegradedServingEndToEnd drives the whole degraded-mode story
// over HTTP: a sticky fsync failure turns appends into 503s that name
// the failed component, reads keep serving the last good snapshot,
// /healthz and /stats report the degradation, and a restart on a
// healthy disk recovers exactly the acknowledged appends.
func TestDegradedServingEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ffs := fsio.NewFaultFS(fsio.OS, fsio.Faults{})
	db := openFaultDurable(t, dir, ffs)
	_, ts := newDurableTestServer(t, db)

	// Healthy append: acked and durable.
	resp := postAppendXML(t, ts.URL, dept2)
	ar := decode[AppendResponse](t, resp)
	if resp.StatusCode != http.StatusOK || ar.WALSeq != 1 {
		t.Fatalf("healthy append: HTTP %d, %+v", resp.StatusCode, ar)
	}

	// The disk stops honoring fsync. The next append's ack MUST be an
	// error: this is the test the issue demands — fsync fails, no lie.
	ffs.SetFaults(fsio.Faults{SyncFailAfter: 1})
	resp = postAppendXML(t, ts.URL, dept2)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("append with failing fsync: HTTP %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("degraded 503 lacks Retry-After")
	}
	er := decode[ErrorResponse](t, resp)
	if er.Degraded == nil || er.Degraded.Component != "wal" {
		t.Fatalf("degraded append error: %+v", er)
	}

	// Subsequent appends are refused up front by the degraded gate.
	resp = postAppendXML(t, ts.URL, dept2)
	er = decode[ErrorResponse](t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || er.Degraded == nil || er.Degraded.Component != "wal" {
		t.Fatalf("append while sealed: HTTP %d, %+v", resp.StatusCode, er)
	}

	// Reads still serve the last good snapshot.
	resp = postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"})
	est := decode[EstimateResponse](t, resp)
	if resp.StatusCode != http.StatusOK || est.Estimate == nil || *est.Estimate <= 0 {
		t.Fatalf("estimate while degraded: HTTP %d, %+v", resp.StatusCode, est)
	}

	// /healthz stays 200 (reads are alive) but reports the component.
	resp = mustGet(t, ts.URL+"/healthz")
	h := decode[HealthResponse](t, resp)
	if resp.StatusCode != http.StatusOK || h.Status != "degraded" ||
		h.Degraded == nil || h.Degraded.Component != "wal" {
		t.Fatalf("degraded healthz: HTTP %d, %+v", resp.StatusCode, h)
	}

	// /stats surfaces the durability degradation for monitoring.
	st := decode[StatsResponse](t, mustGet(t, ts.URL+"/stats"))
	if st.Durability == nil || !st.Durability.Degraded || st.Durability.DegradedComponent != "wal" {
		t.Fatalf("degraded stats durability: %+v", st.Durability)
	}

	// Restart on a healthy disk: the acked append is there, the refused
	// ones are not, and the daemon is fully healthy again.
	ts.Close()
	_ = db.Close() // sealed WAL: the close itself reports the failure
	db2 := openFaultDurable(t, dir, nil)
	defer db2.Close()
	_, ts2 := newDurableTestServer(t, db2)
	h = decode[HealthResponse](t, mustGet(t, ts2.URL+"/healthz"))
	if h.Status != "ok" {
		t.Fatalf("healthz after recovery: %+v", h)
	}
	if got := db2.Version(); got == 0 {
		t.Fatal("recovered database has no serving version")
	}
	if rec, ok := db2.Recovery(); !ok || rec.ReplayedRecords+rec.CheckpointShards == 0 {
		t.Fatalf("recovery info: %+v ok=%v", rec, ok)
	}
	resp = postAppendXML(t, ts2.URL, dept2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append after recovery: HTTP %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// TestPanicRecoveryMiddleware: a panicking handler becomes a 500 with
// a JSON error body and a bumped panics counter — the process and the
// connection both survive.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.instrument("panicky", http.MethodGet, DefaultMaxBodyBytes, func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/panicky", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: HTTP %d, want 500", rec.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Fatalf("panic response body %q: %v", rec.Body.String(), err)
	}
	if got := s.Metrics().Endpoint("panicky").Panics(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// A panic after the handler already wrote keeps the partial
	// response (the status line is gone) but still counts.
	h2 := s.instrument("panicky2", http.MethodGet, DefaultMaxBodyBytes, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("late boom")
	})
	rec2 := httptest.NewRecorder()
	h2.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/panicky2", nil))
	if got := s.Metrics().Endpoint("panicky2").Panics(); got != 1 {
		t.Fatalf("late panics counter = %d, want 1", got)
	}
}

// TestHTTPHardeningConfig: zero-valued timeout knobs take the
// defaults, explicit values stick, negatives are rejected at boot.
func TestHTTPHardeningConfig(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if s.cfg.ReadTimeout != DefaultReadTimeout || s.cfg.WriteTimeout != DefaultWriteTimeout ||
		s.cfg.IdleTimeout != DefaultIdleTimeout || s.cfg.MaxHeaderBytes != DefaultMaxHeaderBytes {
		t.Fatalf("defaults not applied: %+v", s.cfg)
	}

	s2, _ := newTestServer(t, Config{
		ReadTimeout: 3 * time.Second, WriteTimeout: 4 * time.Second,
		IdleTimeout: 5 * time.Second, MaxHeaderBytes: 4096,
	})
	if s2.cfg.ReadTimeout != 3*time.Second || s2.cfg.WriteTimeout != 4*time.Second ||
		s2.cfg.IdleTimeout != 5*time.Second || s2.cfg.MaxHeaderBytes != 4096 {
		t.Fatalf("explicit values not kept: %+v", s2.cfg)
	}

	// The listener-facing http.Server carries the configured values.
	s3, _ := newTestServer(t, Config{Addr: "127.0.0.1:0", ReadTimeout: 3 * time.Second})
	if _, err := s3.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := timeoutCtx(t)
	defer cancel()
	defer s3.Shutdown(ctx)
	if s3.httpSrv.ReadTimeout != 3*time.Second ||
		s3.httpSrv.WriteTimeout != DefaultWriteTimeout ||
		s3.httpSrv.IdleTimeout != DefaultIdleTimeout ||
		s3.httpSrv.MaxHeaderBytes != DefaultMaxHeaderBytes {
		t.Fatalf("http.Server fields: %+v", s3.httpSrv)
	}

	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	for i, bad := range []Config{
		{ReadTimeout: -time.Second},
		{WriteTimeout: -time.Second},
		{IdleTimeout: -time.Second},
		{MaxHeaderBytes: -1},
	} {
		bad.Logger = discardLogger()
		if _, err := New(db, bad); err == nil {
			t.Errorf("bad hardening config %d accepted at boot", i)
		}
	}
}

// TestCheckpointFailureCountsAndBacksOff: a failing checkpoint bumps
// the failure counter and leaves the server degraded; a later success
// clears it.
func TestCheckpointFailureCountsAndBacksOff(t *testing.T) {
	dir := t.TempDir()
	ffs := fsio.NewFaultFS(fsio.OS, fsio.Faults{})
	db := openFaultDurable(t, dir, ffs)
	defer db.Close()
	s, ts := newDurableTestServer(t, db)

	// Break the disk for exactly the next operation: the checkpoint
	// fails, counts, and marks the component.
	ffs.SetFaults(fsio.Faults{FailOp: ffs.OpCount() + 1})
	if err := s.checkpointOnce(); err == nil {
		t.Fatal("checkpoint on a failing disk: want error")
	}
	if got := s.cpFailures.Load(); got != 1 {
		t.Fatalf("checkpoint failure counter = %d, want 1", got)
	}
	h := decode[HealthResponse](t, mustGet(t, ts.URL+"/healthz"))
	if h.Status != "degraded" || h.Degraded == nil || h.Degraded.Component != "checkpoint" {
		t.Fatalf("healthz after failed checkpoint: %+v", h)
	}
	// Appends still work: only the checkpoint path is degraded.
	resp := postAppendXML(t, ts.URL, dept2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append under checkpoint degradation: HTTP %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	ffs.ClearFaults()
	if err := s.checkpointOnce(); err != nil {
		t.Fatalf("recovered checkpoint: %v", err)
	}
	h = decode[HealthResponse](t, mustGet(t, ts.URL+"/healthz"))
	if h.Status != "ok" {
		t.Fatalf("healthz after recovered checkpoint: %+v", h)
	}
}
