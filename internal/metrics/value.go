package metrics

import (
	"sync/atomic"

	"xmlest/internal/histogram"
)

// valueGridBounds spans 1 to 2^20 with doubling (log-spaced) buckets,
// plus a catch-all first bucket for zero — 22 buckets. The same
// footprint/error trade-off as the latency grid: a few hundred bytes,
// quantile error bounded by the 2× bucket ratio.
func valueGridBounds() []int {
	bounds := []int{0}
	for v := 1; v <= 1<<20; v *= 2 {
		bounds = append(bounds, v)
	}
	return bounds
}

// valueGrid is the shared bucket partition for integer-valued
// histograms (group sizes, queue depths).
var valueGrid = histogram.MustGrid(valueGridBounds())

// ValueHistogram is a fixed-bucket histogram of non-negative integer
// observations. All methods are safe for concurrent use; Observe is
// wait-free. It is the latency histogram's machinery pointed at
// dimensionless values — group sizes, batch counts — instead of
// nanoseconds.
type ValueHistogram struct {
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// NewValueHistogram returns a histogram over the default log-spaced
// partition (1..2^20, doubling).
func NewValueHistogram() *ValueHistogram {
	return &ValueHistogram{buckets: make([]atomic.Uint64, valueGrid.Size())}
}

// Observe records one value; negatives clamp to zero.
func (h *ValueHistogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	clamped := v
	if clamped >= valueGrid.MaxPos() {
		clamped = valueGrid.MaxPos() - 1
	}
	h.buckets[valueGrid.Bucket(clamped)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if uint64(v) <= cur || h.max.CompareAndSwap(cur, uint64(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *ValueHistogram) Count() uint64 { return h.count.Load() }

// ValueSummary is a point-in-time digest of a ValueHistogram.
// Quantiles are interpolated within buckets (2× worst-case relative
// error); Max is exact.
type ValueSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   uint64  `json:"max"`
}

// Summary digests the histogram. Concurrent Observes may land between
// the per-bucket reads; the digest is internally consistent with the
// counts it read.
func (h *ValueHistogram) Summary() ValueSummary {
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := ValueSummary{Count: total, Max: h.max.Load()}
	if total == 0 {
		return s
	}
	s.Mean = float64(h.sum.Load()) / float64(total)
	s.P50 = valueQuantile(counts, total, 0.50)
	s.P95 = valueQuantile(counts, total, 0.95)
	s.P99 = valueQuantile(counts, total, 0.99)
	if s.Max > 0 {
		// The top bucket's upper edge can exceed the largest observation
		// by up to 2×; the tracked max is a tighter cap.
		for _, q := range []*float64{&s.P50, &s.P95, &s.P99} {
			if *q > float64(s.Max) {
				*q = float64(s.Max)
			}
		}
	}
	return s
}

// valueQuantile walks the bucket counts to the one holding rank
// p*total and interpolates linearly within its [Lo, Hi) extent.
func valueQuantile(counts []uint64, total uint64, p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			lo, hi := float64(valueGrid.Lo(i)), float64(valueGrid.Hi(i))
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += float64(c)
	}
	return float64(valueGrid.MaxPos())
}
