package cliutil

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"xmlest"
	"xmlest/internal/fsio"
	"xmlest/internal/manifest"
	"xmlest/internal/shard"
	"xmlest/internal/wal"
)

// DurableFlags carries the durability-related command-line flags of
// xqestd and xqest into OpenDurableDatabase. Zero values mean "use the
// library default" throughout.
type DurableFlags struct {
	// Fsync and FsyncInterval are the WAL fsync policy flags (-fsync,
	// -fsync-interval).
	Fsync         string
	FsyncInterval time.Duration

	// CommitDelay is the group-commit latency budget (-commit-delay):
	// how long the committer waits for more concurrent appends to share
	// one fsync. 0 keeps natural coalescing only.
	CommitDelay time.Duration

	// IngestWorkers bounds concurrent parse + summary-build work on the
	// append pipeline (-ingest-workers; 0 = GOMAXPROCS).
	IngestWorkers int

	// Data, Dataset, Scale and Seed are the corpus flags; they
	// bootstrap a fresh directory (see OpenDatabase).
	Data    string
	Dataset string
	Scale   float64
	Seed    int64

	// FaultSpec, if non-empty, is an fsio.ParseFaults schedule (the
	// -fault testing flag): the store then runs on a fault-injecting
	// filesystem.
	FaultSpec string
}

// OpenDurableDatabase opens (or recovers) a durable database in
// dataDir — the shared -data-dir path of xqestd and xqest. The corpus
// flags (-data/-dataset) bootstrap a fresh directory and define the
// predicate vocabulary on every boot; when both are empty the daemon
// starts empty with the all-tags vocabulary and grows by ingest alone.
// opts are the estimator options (-grid/-build-workers); the grid size
// must match the directory's manifest on recovered boots.
func OpenDurableDatabase(dataDir string, opts xmlest.Options, f DurableFlags) (*xmlest.Database, error) {
	var bootstrap func() (*xmlest.Database, error)
	if f.Data != "" || f.Dataset != "" {
		bootstrap = func() (*xmlest.Database, error) {
			return OpenDatabase(f.Data, f.Dataset, f.Scale, f.Seed)
		}
	}
	var fs fsio.FS
	if f.FaultSpec != "" {
		faults, err := fsio.ParseFaults(f.FaultSpec)
		if err != nil {
			return nil, fmt.Errorf("-fault: %w", err)
		}
		fs = fsio.NewFaultFS(fsio.OS, faults)
	}
	return xmlest.OpenDurable(dataDir, xmlest.DurableConfig{
		Options:       opts,
		Fsync:         f.Fsync,
		FsyncInterval: f.FsyncInterval,
		CommitDelay:   f.CommitDelay,
		IngestWorkers: f.IngestWorkers,
		Bootstrap:     bootstrap,
		FS:            fs,
	})
}

// InspectWAL prints a data directory's write-ahead log: its segments
// (sequence ranges, record counts, sizes, torn tails) and, when
// records is true, every record's sequence, ack version, document
// count and byte size. Read-only: torn tails are reported, not
// repaired.
func InspectWAL(w io.Writer, dataDir string, records bool) error {
	dir := filepath.Join(dataDir, shard.WALDir)
	segs, err := wal.List(dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		fmt.Fprintf(w, "no WAL segments in %s\n", dir)
		return nil
	}
	var totalRecords int
	var totalBytes int64
	for _, seg := range segs {
		totalRecords += seg.Records
		totalBytes += seg.Bytes
	}
	fmt.Fprintf(w, "%d segment(s), %d record(s), %d bytes in %s\n", len(segs), totalRecords, totalBytes, dir)
	for _, seg := range segs {
		torn := ""
		if seg.TornBytes > 0 {
			torn = fmt.Sprintf("  TORN TAIL: %d bytes", seg.TornBytes)
		}
		span := "empty"
		if seg.Records > 0 {
			span = fmt.Sprintf("seq %d..%d", seg.FirstSeq, seg.LastSeq)
		}
		fmt.Fprintf(w, "  %-24s %-18s %6d record(s) %10d bytes%s\n",
			filepath.Base(seg.Path), span, seg.Records, seg.Bytes, torn)
	}
	if !records {
		return nil
	}
	return wal.ScanDir(dir, 0, func(rec wal.Record) error {
		var bytes int
		for _, d := range rec.Docs {
			bytes += len(d)
		}
		fmt.Fprintf(w, "  record seq %-8d ack version %-8d %3d doc(s) %8d bytes\n",
			rec.Seq, rec.Version, len(rec.Docs), bytes)
		return nil
	})
}

// InspectManifest prints a data directory's checkpoint manifest:
// pinned version, WAL truncation point, grid size and the live shard
// table.
func InspectManifest(w io.Writer, dataDir string) error {
	man, ok, err := manifest.Load(dataDir)
	if err != nil {
		return err
	}
	if !ok {
		fmt.Fprintf(w, "no %s in %s (no checkpoint yet)\n", manifest.FileName, dataDir)
		return nil
	}
	fmt.Fprintf(w, "checkpoint version %d, wal truncation point %d, grid %d, %d shard(s)\n",
		man.Version, man.WALSeq, man.GridSize, len(man.Shards))
	for _, sh := range man.Shards {
		fmt.Fprintf(w, "  shard %-4d %-28s %6d doc(s) %10d nodes  wal seq %-6d %10d bytes  crc %08x\n",
			sh.ID, sh.File, sh.Docs, sh.Nodes, sh.WALSeq, sh.Bytes, sh.CRC32)
	}
	return nil
}
