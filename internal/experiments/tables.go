package experiments

import (
	"sync"
	"time"

	"xmlest/internal/core"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// PredRow is one row of Table 1 or Table 3: a predicate's cardinality
// and overlap property, with the paper's reported values alongside.
type PredRow struct {
	Name       string
	Count      int
	NoOverlap  bool
	PaperCount int
	PaperNote  string // the paper's "Overlap Property" column text
}

// Table1 reproduces "Characteristics of Some Predicates on the DBLP
// Data Set".
func Table1() []PredRow {
	s := DBLP()
	rows := []struct {
		pred       string
		paperCount int
		paperNote  string
	}{
		{"tag=article", 7366, "no overlap"},
		{"tag=author", 41501, "no overlap"},
		{"tag=book", 408, "no overlap"},
		{"tag=cdrom", 1722, "no overlap"},
		{"tag=cite", 33097, "no overlap"},
		{"tag=title", 19921, "no overlap"},
		{"tag=url", 19542, "no overlap"},
		{"tag=year", 19914, "no overlap"},
		{"conf", 13609, "N/A"},
		{"journal", 7834, "N/A"},
		{"1980's", 13066, "N/A"},
		{"1990's", 3963, "N/A"},
	}
	out := make([]PredRow, 0, len(rows))
	for _, r := range rows {
		e := s.Catalog.MustGet(r.pred)
		out = append(out, PredRow{
			Name: r.pred, Count: e.Count(), NoOverlap: e.NoOverlap,
			PaperCount: r.paperCount, PaperNote: r.paperNote,
		})
	}
	return out
}

// Table3 reproduces "Characteristics of Predicates on the Synthetic
// Data Set".
func Table3() []PredRow {
	s := Hier()
	rows := []struct {
		pred       string
		paperCount int
		paperNote  string
	}{
		{"tag=manager", 44, "overlap"},
		{"tag=department", 270, "overlap"},
		{"tag=employee", 473, "no overlap"},
		{"tag=email", 173, "no overlap"},
		{"tag=name", 1002, "no overlap"},
	}
	out := make([]PredRow, 0, len(rows))
	for _, r := range rows {
		e := s.Catalog.MustGet(r.pred)
		out = append(out, PredRow{
			Name: r.pred, Count: e.Count(), NoOverlap: e.NoOverlap,
			PaperCount: r.paperCount, PaperNote: r.paperNote,
		})
	}
	return out
}

// QueryRow is one row of Table 2 or Table 4: every estimate the paper
// tabulates for one simple anc//desc query, with measured times.
type QueryRow struct {
	Anc, Desc string // display names

	Naive   float64 // product of cardinalities
	DescNum int     // schema-only upper bound (no-overlap ancestors; 0 = N/A)

	Overlap     float64 // primitive pH-Join estimate
	OverlapTime time.Duration

	NoOverlap     float64 // Fig 10 estimate (NaN column = N/A in paper)
	NoOverlapTime time.Duration
	HasNoOverlap  bool

	Real int64

	// Paper's reported values for side-by-side comparison (0 when the
	// paper shows N/A).
	PaperNaive, PaperOverlap, PaperNoOverlap, PaperReal float64
}

// table2Queries are the Table 2 query pairs with the paper's numbers.
var table2Queries = []struct {
	anc, desc                                 string
	paperNaive, paperOv, paperNoOv, paperReal float64
}{
	{"tag=article", "tag=author", 305696366, 2415480, 14627, 14644},
	{"tag=article", "tag=cdrom", 12684252, 4379, 112, 130},
	{"tag=article", "tag=cite", 243792502, 671722, 3958, 5114},
	{"tag=book", "tag=cdrom", 702576, 179, 4, 3},
}

// Table2 reproduces "Result Size Estimation for Simple Queries on DBLP
// Data Set".
func Table2() []QueryRow {
	s := DBLP()
	out := make([]QueryRow, 0, len(table2Queries))
	for _, q := range table2Queries {
		out = append(out, runQuery(s, q.anc, q.desc,
			q.paperNaive, q.paperOv, q.paperNoOv, q.paperReal))
	}
	return out
}

// table4Queries are the Table 4 query pairs. A paperNoOv of 0 marks the
// paper's N/A (ancestor may overlap).
var table4Queries = []struct {
	anc, desc                                 string
	paperNaive, paperOv, paperNoOv, paperReal float64
}{
	{"tag=manager", "tag=department", 11880, 656, 0, 761},
	{"tag=manager", "tag=employee", 20812, 1205, 0, 1395},
	{"tag=manager", "tag=email", 7612, 429, 0, 491},
	{"tag=department", "tag=employee", 127710, 2914, 0, 1663},
	{"tag=department", "tag=email", 46710, 1082, 0, 473},
	{"tag=employee", "tag=name", 473946, 8070, 559, 688},
	{"tag=employee", "tag=email", 81829, 1391, 96, 99},
}

// Table4 reproduces "Synthetic Data Set: Result Size Estimation for
// Simple Queries".
func Table4() []QueryRow {
	s := Hier()
	out := make([]QueryRow, 0, len(table4Queries))
	for _, q := range table4Queries {
		out = append(out, runQuery(s, q.anc, q.desc,
			q.paperNaive, q.paperOv, q.paperNoOv, q.paperReal))
	}
	return out
}

func runQuery(s *Setup, anc, desc string, paperNaive, paperOv, paperNoOv, paperReal float64) QueryRow {
	ancE := s.Catalog.MustGet(anc)
	descE := s.Catalog.MustGet(desc)
	row := QueryRow{
		Anc: displayName(anc), Desc: displayName(desc),
		Naive:      float64(ancE.Count()) * float64(descE.Count()),
		Real:       s.RealPairs(anc, desc),
		PaperNaive: paperNaive, PaperOverlap: paperOv,
		PaperNoOverlap: paperNoOv, PaperReal: paperReal,
	}
	if ancE.NoOverlap {
		row.DescNum = descE.Count()
	}
	ov, err := s.Estimator.EstimatePairPrimitive(anc, desc)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	row.Overlap, row.OverlapTime = ov.Estimate, ov.Elapsed
	if ancE.NoOverlap {
		nv, err := s.Estimator.EstimatePair(anc, desc)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		row.NoOverlap, row.NoOverlapTime, row.HasNoOverlap = nv.Estimate, nv.Elapsed, true
	}
	return row
}

func displayName(pred string) string {
	if len(pred) > 4 && pred[:4] == "tag=" {
		return pred[4:]
	}
	return pred
}

// RunningExample reproduces the paper's faculty//TA walk-through
// (Sections 2, 3.2, 4.2) on the exact Fig 1 document with 2×2 grids.
type RunningExampleResult struct {
	Naive, UpperBound, Primitive, NoOverlap, Real float64
	// Paper's narrated values: 15, 5, 0.6, 1.9, 2.
	PaperNaive, PaperUpperBound, PaperPrimitive, PaperNoOverlap, PaperReal float64
}

// RunExample computes the running example.
func RunExample() (RunningExampleResult, error) {
	tree := fig1Setup()
	res := RunningExampleResult{
		PaperNaive: 15, PaperUpperBound: 5, PaperPrimitive: 0.6,
		PaperNoOverlap: 1.9, PaperReal: 2,
	}
	res.Naive = float64(len(tree.Catalog.MustGet("tag=faculty").Nodes) *
		len(tree.Catalog.MustGet("tag=TA").Nodes))
	res.UpperBound = float64(len(tree.Catalog.MustGet("tag=TA").Nodes))
	res.Real = float64(tree.RealPairs("tag=faculty", "tag=TA"))
	prim, err := tree.Estimator.EstimatePairPrimitive("tag=faculty", "tag=TA")
	if err != nil {
		return res, err
	}
	res.Primitive = prim.Estimate
	noov, err := tree.Estimator.EstimatePair("tag=faculty", "tag=TA")
	if err != nil {
		return res, err
	}
	res.NoOverlap = noov.Estimate
	return res, nil
}

var (
	fig1Once sync.Once
	fig1S    *Setup
)

func fig1Setup() *Setup {
	fig1Once.Do(func() {
		tree := xmltree.Fig1Document()
		cat := predicate.NewCatalog(tree)
		cat.AddAllTags()
		est, err := core.NewEstimator(cat, core.Options{GridSize: 2})
		if err != nil {
			panic("experiments: fig1 estimator: " + err.Error())
		}
		fig1S = &Setup{Tree: tree, Catalog: cat, Estimator: est}
	})
	return fig1S
}
