// Merged-summary serving: the store maintains, per active option set, a
// frozen monolithic summary folded from every live shard's summary on
// the concatenated document-aligned grid (core.MergeSummaries). A hot
// estimate against a covered snapshot then costs O(1) shards — one
// folded query — instead of an O(shards) fan-out, while shards appended
// after the last fold (the "fresh tail") are served by per-shard
// fan-out on top of the merged result. Because the fold is exact with
// respect to the fan-out sum (the PR 2 aligned-grid argument; see
// DESIGN.md, "Execution engine"), switching between the two paths never
// changes an estimate beyond float-accumulation order.
//
// Folds run on a background worker scheduled after every set install
// (append, drop, compact) and after predicate registration; they read
// one immutable snapshot and touch only summaries, never documents, so
// they cost O(total non-zero cells) and never block readers or
// writers. Under sustained mutation the worker paces itself
// (mergeFoldInterval) and skips sets wider than the grid cap
// (MergedMaxGridSize) — a stale or missing fold only means fan-out
// serving, never a wrong answer.

package shard

import (
	"sync/atomic"
	"time"

	"xmlest/internal/core"
)

// mergedView is one frozen fold: the monolithic summary over the
// shards listed in covered, for one normalized option set.
type mergedView struct {
	opts    core.Options // summaryKey-normalized
	version uint64       // version of the set the fold covered
	covered map[uint64]struct{}
	est     *core.Estimator
	// mixed lists predicates whose per-shard summaries disagree on
	// no-overlap/coverage; queries touching them fan out (the folded
	// estimator cannot reproduce the per-shard algorithm mix).
	mixed core.MergedPredicateMixed
}

// coversAll reports whether every folded shard is still a member of
// set — the validity condition for serving set through the view (extra
// set members are the fresh tail and fan out).
func (v *mergedView) coversAll(set *Set) bool {
	if len(v.covered) > set.Len() {
		return false
	}
	n := 0
	for _, sh := range set.shards {
		if _, ok := v.covered[sh.id]; ok {
			n++
		}
	}
	return n == len(v.covered)
}

// mergedBudgetBytes caps the estimated dense-plane footprint of one
// merged view: a fold producing G concatenated buckets over P
// predicates allocates roughly G²×8×(P+1) bytes of position planes.
// Serving sets normally stay far below the cap (compaction bounds the
// shard count), but an uncompacted store with hundreds of shards must
// degrade to fan-out rather than balloon. Atomic because background
// fold workers read it while tests and tuning code write it.
var mergedBudgetBytes atomic.Int64

// DefaultMergedBudgetBytes is the default fold footprint cap.
const DefaultMergedBudgetBytes = 256 << 20

func init() {
	mergedBudgetBytes.Store(DefaultMergedBudgetBytes)
	mergedMaxGrid.Store(DefaultMergedMaxGridSize)
}

// MergedBudgetBytes returns the current fold footprint cap.
func MergedBudgetBytes() int64 { return mergedBudgetBytes.Load() }

// SetMergedBudgetBytes tunes the fold footprint cap (<=0 restores the
// default) and returns the previous value.
func SetMergedBudgetBytes(n int64) int64 {
	if n <= 0 {
		n = DefaultMergedBudgetBytes
	}
	return mergedBudgetBytes.Swap(n)
}

// MergedInfo describes the merged-serving state for one option set —
// the introspection the daemon's /stats endpoint reports.
type MergedInfo struct {
	// Enabled reports whether the store folds merged views at all
	// (always true for store-backed estimators; false for loaded,
	// store-less sets).
	Enabled bool `json:"enabled"`
	// Fresh reports whether the latest fold covers the current serving
	// set exactly — no fan-out tail.
	Fresh bool `json:"fresh"`
	// CoveredShards is the number of shards the latest fold covers (0
	// when no fold has completed or the fold was invalidated).
	CoveredShards int `json:"covered_shards"`
	// Version is the serving-set version the latest fold covered.
	Version uint64 `json:"version"`
	// Epoch counts completed folds and invalidations; compiled queries
	// rebind when it moves.
	Epoch uint64 `json:"epoch"`
}

// MergeEpoch returns the merged-serving epoch: it advances whenever a
// fold completes or the views are invalidated, and is the cheap
// staleness check compiled queries use to adopt a new fold without a
// set swap.
func (st *Store) MergeEpoch() uint64 { return st.mergeEpoch.Load() }

// MergedInfo reports the merged-serving state for opts against the
// given set (nil set means the current serving set).
func (st *Store) MergedInfo(set *Set, opts core.Options) MergedInfo {
	if set == nil {
		set = st.Current()
	}
	info := MergedInfo{Enabled: true, Epoch: st.MergeEpoch()}
	v := st.viewFor(opts)
	if v == nil {
		// A single-shard set needs no fold: it already serves in O(1).
		info.Fresh = set.Len() <= 1
		return info
	}
	info.CoveredShards = len(v.covered)
	info.Version = v.version
	info.Fresh = v.coversAll(set) && len(v.covered) == set.Len()
	return info
}

// viewFor returns the latest fold for opts, or nil.
func (st *Store) viewFor(opts core.Options) *mergedView {
	key := summaryKey(opts)
	st.mergedMu.Lock()
	defer st.mergedMu.Unlock()
	return st.merged[key]
}

// mergedFor returns the fold applicable to set for opts — the latest
// fold, provided every folded shard is still in set — or nil.
func (st *Store) mergedFor(set *Set, opts core.Options) *mergedView {
	v := st.viewFor(opts)
	if v == nil || !v.coversAll(set) {
		return nil
	}
	return v
}

// invalidateMerged drops every fold (after predicate registration
// rebuilt the shard catalogs underneath them) and bumps the epoch so
// bound queries fall back to fan-out until the next fold completes.
func (st *Store) invalidateMerged() {
	st.mergedMu.Lock()
	st.merged = nil
	st.mergedMu.Unlock()
	st.mergeEpoch.Add(1)
}

// scheduleMerge requests a background fold of the current serving set.
// Calls coalesce: at most one worker runs, and a request arriving while
// it folds makes it run once more against the then-current snapshot. It
// is safe to call with store locks held — it only flips an atomic and
// possibly spawns the worker.
func (st *Store) scheduleMerge() {
	for {
		switch st.mergeState.Load() {
		case mergeIdle:
			if st.mergeState.CompareAndSwap(mergeIdle, mergeRunning) {
				go st.mergeWorker()
				return
			}
		case mergeRunning:
			if st.mergeState.CompareAndSwap(mergeRunning, mergeDirty) {
				return
			}
		default: // mergeDirty: a re-run is already queued
			return
		}
	}
}

const (
	mergeIdle int32 = iota
	mergeRunning
	mergeDirty
)

// mergeFoldInterval rate-limits the background worker under sustained
// mutation: the first scheduled fold runs immediately, but while new
// requests keep arriving the worker re-folds at most once per
// interval. Heavy ingest therefore costs at most ~2 folds/s of
// background work — fresh tail shards are served by fan-out on top of
// the last fold in the meantime, which is exact, so a stale fold is a
// performance state, never a correctness one.
const mergeFoldInterval = 500 * time.Millisecond

// mergeWorker folds until no new mutations arrived while folding,
// pacing re-folds by mergeFoldInterval.
func (st *Store) mergeWorker() {
	for {
		start := time.Now()
		st.foldActive()
		if st.mergeState.CompareAndSwap(mergeRunning, mergeIdle) {
			return
		}
		// State was mergeDirty: collapse it back to running and fold the
		// newer snapshot after the pacing interval elapses.
		st.mergeState.Store(mergeRunning)
		if d := mergeFoldInterval - time.Since(start); d > 0 {
			time.Sleep(d)
		}
	}
}

// MergeNow folds the current serving set synchronously for every
// active option set. Tests and benchmarks use it to reach a fresh
// merged state deterministically; serving relies on the background
// scheduling instead.
func (st *Store) MergeNow() { st.foldActive() }

// foldActive folds the current snapshot for every active option set.
// foldMu serializes passes with each other (a slow scheduled fold
// cannot overwrite a newer synchronous one — the snapshot is read
// under the lock) and with setup-time predicate registration.
func (st *Store) foldActive() {
	st.foldMu.Lock()
	defer st.foldMu.Unlock()
	set := st.Current()
	for _, opts := range st.activeOptions() {
		st.foldOne(set, opts)
	}
}

// foldOne builds and publishes the fold of set for one option set, or
// clears a stale unusable fold. Failures (oversized grid, level
// histograms, budget) simply leave fan-out serving in place.
func (st *Store) foldOne(set *Set, opts core.Options) {
	key := summaryKey(opts)
	if key.LevelHistograms {
		return // parent-child refinement cannot be folded; always fan out
	}
	st.mergedMu.Lock()
	prev := st.merged[key]
	st.mergedMu.Unlock()
	if prev != nil && prev.version == set.version {
		return // already fresh
	}
	if set.Len() <= 1 {
		// Single-shard (or empty) sets serve in O(1) without a fold;
		// drop any stale view so it cannot linger.
		if prev != nil {
			st.publish(key, nil)
		}
		return
	}
	sums, err := set.summaries(opts)
	if err != nil {
		return
	}
	if overMergedBudget(sums) {
		if prev != nil && !prev.coversAll(set) {
			st.publish(key, nil)
		}
		return
	}
	est, mixed, err := core.MergeSummaries(sums)
	if err != nil {
		if prev != nil && !prev.coversAll(set) {
			st.publish(key, nil)
		}
		return
	}
	covered := make(map[uint64]struct{}, set.Len())
	for _, sh := range set.shards {
		covered[sh.id] = struct{}{}
	}
	st.publish(key, &mergedView{
		opts:    key,
		version: set.version,
		covered: covered,
		est:     est,
		mixed:   mixed,
	})
}

// publish installs (or clears) a fold and bumps the epoch.
func (st *Store) publish(key core.Options, v *mergedView) {
	st.mergedMu.Lock()
	if v == nil {
		delete(st.merged, key)
	} else {
		if st.merged == nil {
			st.merged = make(map[core.Options]*mergedView)
		}
		st.merged[key] = v
	}
	st.mergedMu.Unlock()
	st.mergeEpoch.Add(1)
	if v != nil {
		st.foldsDone.Add(1)
		st.lastFoldNano.Store(time.Now().UnixNano())
	}
}

// mergedMaxGrid caps the concatenated grid of a fold. Dense Sums
// planes are O(G²) and every epoch's fresh merged estimator rebuilds
// them for each hot predicate, so folding a wide uncompacted burst
// (hundreds of shards between compaction rounds) costs far more CPU
// than the O(shards) fan-out it would replace — profiling the serving
// benchmark put >50% of daemon CPU into plane zeroing before this cap.
// ~25 shards at the paper's g=10 still fold; wider sets serve the last
// fold's prefix plus fan-out until compaction shrinks them.
var mergedMaxGrid atomic.Int64

// DefaultMergedMaxGridSize is the default concatenated-grid cap.
const DefaultMergedMaxGridSize = 256

// MergedMaxGridSize returns the current concatenated-grid cap.
func MergedMaxGridSize() int { return int(mergedMaxGrid.Load()) }

// SetMergedMaxGridSize tunes the concatenated-grid cap (<=0 restores
// the default) and returns the previous value. Benchmarks raise it to
// fold deliberately wide sets; serving deployments should rely on
// compaction keeping sets narrow instead.
func SetMergedMaxGridSize(n int) int {
	if n <= 0 {
		n = DefaultMergedMaxGridSize
	}
	return int(mergedMaxGrid.Swap(int64(n)))
}

// overMergedBudget estimates the fold's cost drivers — the
// concatenated grid size G (CPU: dense O(G²) plane builds per epoch)
// and the dense-plane footprint G²×8×(preds+1) (memory) — against
// mergedMaxGridSize and MergedBudgetBytes.
func overMergedBudget(sums []*core.Estimator) bool {
	g := 0
	preds := make(map[string]struct{})
	for _, est := range sums {
		g += est.Grid().Size()
		for _, name := range est.Names() {
			preds[name] = struct{}{}
		}
	}
	if int64(g) > mergedMaxGrid.Load() {
		return true
	}
	bytes := int64(g) * int64(g) * 8 * int64(len(preds)+1)
	return bytes > mergedBudgetBytes.Load()
}
