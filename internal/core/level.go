package core

import (
	"sort"

	"xmlest/internal/histogram"
	"xmlest/internal/xmltree"
)

// Level histograms: the parent-child extension. The EDBT paper
// estimates ancestor-descendant edges and lists parent-child estimation
// as tech-report work; this file implements the natural position-
// histogram formulation. A parent-child pair is exactly an
// ancestor-descendant pair whose depths differ by one, so splitting
// each predicate's position histogram by node depth and summing the
// primitive estimate over (depth d, depth d+1) histogram pairs yields a
// parent-child estimate with no new machinery — only the bucketing
// error of the underlying histograms remains.
//
// Storage stays modest: the per-depth histograms of one predicate
// partition its node list, so their total non-zero cells are bounded by
// the O(g) bound of Theorem 1 per occupied depth, and XML documents are
// shallow in practice.

// LevelHistograms is a predicate's position histogram split by depth.
type LevelHistograms struct {
	grid    histogram.Grid
	byDepth map[int]*histogram.Position
}

// BuildLevelHistograms constructs per-depth histograms for a node list.
func BuildLevelHistograms(t *xmltree.Tree, nodes []xmltree.NodeID, grid histogram.Grid) *LevelHistograms {
	l := &LevelHistograms{grid: grid, byDepth: make(map[int]*histogram.Position)}
	for _, id := range nodes {
		n := t.Node(id)
		h := l.byDepth[n.Depth]
		if h == nil {
			h = histogram.NewPosition(grid)
			l.byDepth[n.Depth] = h
		}
		h.Add(grid.Bucket(n.Start), grid.Bucket(n.End), 1)
	}
	return l
}

// buildLevelHistogramsFromCells is BuildLevelHistograms with the
// per-node grid cells precomputed (the estimator construction path).
func buildLevelHistogramsFromCells(t *xmltree.Tree, nodes []xmltree.NodeID, nc *histogram.NodeCells) *LevelHistograms {
	grid := nc.Grid()
	l := &LevelHistograms{grid: grid, byDepth: make(map[int]*histogram.Position)}
	for _, id := range nodes {
		n := t.Node(id)
		h := l.byDepth[n.Depth]
		if h == nil {
			h = histogram.NewPosition(grid)
			l.byDepth[n.Depth] = h
		}
		i, j := nc.Cell(id)
		h.Add(i, j, 1)
	}
	return l
}

// Depths returns the occupied depths in ascending order.
func (l *LevelHistograms) Depths() []int {
	out := make([]int, 0, len(l.byDepth))
	for d := range l.byDepth {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// At returns the histogram at a depth, or nil when no node of the
// predicate occurs there.
func (l *LevelHistograms) At(depth int) *histogram.Position {
	return l.byDepth[depth]
}

// Total returns the total node count across depths.
func (l *LevelHistograms) Total() float64 {
	var s float64
	for _, h := range l.byDepth {
		s += h.Total()
	}
	return s
}

// StorageBytes reports the compact encoding size summed over depths.
func (l *LevelHistograms) StorageBytes() int {
	total := 0
	for _, h := range l.byDepth {
		total += h.StorageBytes()
	}
	return total
}

// EstimateParentChild estimates the number of (parent, child) pairs
// between two predicates: the primitive ancestor-based estimate summed
// over depth-adjacent histogram pairs.
func EstimateParentChild(anc, desc *LevelHistograms) (float64, error) {
	return EstimateAtDistance(anc, desc, 1)
}

// EstimateAtDistance generalizes EstimateParentChild to any fixed depth
// distance k >= 1 (k = 1 is parent-child; larger k estimates
// grandparent-style path constraints).
func EstimateAtDistance(anc, desc *LevelHistograms, k int) (float64, error) {
	var total float64
	// Ascending depth order keeps the float accumulation deterministic
	// (map iteration order is not; near rounding boundaries the printed
	// estimate used to flip between runs).
	for _, d := range anc.Depths() {
		hb := desc.byDepth[d+k]
		if hb == nil {
			continue
		}
		est, err := EstimateAncestorBased(anc.byDepth[d], hb)
		if err != nil {
			return 0, err
		}
		total += est.Total()
	}
	return total, nil
}
