// Live tailing and replicated appends: the two log-level primitives
// replication is built from. A leader streams its durable records to
// followers with ReadDurable — the only reader that is sound while
// appends are in flight — and a follower lands the shipped records in
// its own log with AppendReplicated, preserving the leader's sequence
// numbers and ack versions so recovery and re-streaming behave exactly
// as they would on the leader.
//
// Why ScanDir is NOT that reader: it decodes every well-formed frame in
// the segment files, including frames that were written but not yet
// fsynced (ModeInterval/ModeOff). Records past the durable watermark
// can vanish in a power cut — shipping them would let a follower apply
// a batch its leader later recovers without, a divergence no reconnect
// heals. ReadDurable caps at DurableSeq(), which the log only advances
// after a successful fsync of fully written frames, so everything it
// surfaces is both complete on disk and crash-proof.

package wal

import (
	"errors"
	"fmt"
	"os"
)

// ErrTailTruncated reports that a tail read lost its position: a
// checkpoint truncated the segment holding the requested records while
// the read was in flight. The tailer cannot continue without risking a
// silent gap; callers restart from a checkpoint (leaders re-plan the
// stream, which ships a snapshot when the follower's position predates
// the truncation point).
var ErrTailTruncated = errors.New("wal: tail position was truncated by a checkpoint")

// errStopScan ends a capped segment scan early without reporting an
// error to the caller.
var errStopScan = errors.New("wal: stop scan")

// ReadDurable streams every record with after < Seq <= DurableSeq() to
// fn, in sequence order, and returns the last sequence delivered
// (after, when nothing qualified). Unlike Replay/ScanDir it is safe
// concurrently with appends: the durable watermark is loaded before the
// segment list, so every surfaced record was fully written and fsynced
// before the scan began — a torn in-flight frame at the tail simply
// ends the scan past the cap. Document slices alias a per-call read
// buffer and are only valid until fn returns.
//
// A segment removed mid-read by a concurrent Truncate returns
// ErrTailTruncated with the records delivered so far; the caller's
// position is then behind the checkpoint and must be re-established
// from a snapshot.
func (l *Log) ReadDurable(after uint64, fn func(Record) error) (uint64, error) {
	durable := l.durableSeq.Load()
	last := after
	if durable <= after {
		return last, nil
	}
	for _, seg := range l.Segments() {
		if seg.LastSeq <= after {
			continue // fully covered by the caller's position
		}
		if seg.FirstSeq > durable {
			break // nothing durable this far out
		}
		data, err := l.fs.ReadFile(seg.Path)
		if err != nil {
			if os.IsNotExist(err) {
				return last, ErrTailTruncated
			}
			return last, fmt.Errorf("wal: tail read: %w", err)
		}
		var cbErr error
		scanSegment(data, func(rec Record) error {
			if rec.Seq <= last {
				return nil
			}
			if rec.Seq > durable {
				return errStopScan
			}
			if err := fn(rec); err != nil {
				cbErr = err
				return err
			}
			last = rec.Seq
			return nil
		})
		if cbErr != nil {
			return last, cbErr
		}
	}
	return last, nil
}

// AppendReplicated logs records shipped from a leader, preserving their
// sequence numbers and ack versions — the follower-side twin of
// AppendGroup. Sequences must be strictly increasing and land above the
// log's current floor (a duplicate or regressing sequence is refused:
// the caller is confused about its own watermark, and overwriting
// history is never correct). Under ModeAlways the group is fsynced
// before return; other modes follow their usual cadence, and callers
// that must not acknowledge un-durable records call Sync explicitly.
//
// Error semantics match AppendGroup: a failed write is rolled back and
// the log seals, a failed fsync seals it outright, and in both cases
// none of the group's records may be treated as applied.
func (l *Log) AppendReplicated(recs []Record) error {
	if len(recs) == 0 {
		return fmt.Errorf("wal: refusing to append an empty group")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.failedErr != nil {
		return l.sealedErr()
	}
	floor := l.nextSeq - 1
	for _, rec := range recs {
		if rec.Seq <= floor {
			return fmt.Errorf("wal: replicated record seq %d is not above the log's floor %d", rec.Seq, floor)
		}
		if len(rec.Docs) == 0 {
			return fmt.Errorf("wal: refusing to append an empty batch")
		}
		floor = rec.Seq
	}
	buf := l.groupBuf[:0]
	for _, rec := range recs {
		frame, err := encodeFrame(rec)
		if err != nil {
			return err
		}
		buf = append(buf, frame...)
	}
	if cap(buf) <= maxRetainedGroupBuf {
		l.groupBuf = buf
	} else {
		l.groupBuf = nil
	}
	if l.activeSize+int64(len(buf)) > l.opts.SegmentBytes && l.activeSize > headerLen {
		if err := l.rollLocked(recs[0].Seq); err != nil {
			return err
		}
	}
	if _, err := l.active.Write(buf); err != nil {
		// Same rollback discipline as AppendGroup: partial frames must
		// never precede later appends, or recovery's torn-tail cut would
		// discard acknowledged records behind them.
		if terr := l.active.Truncate(l.activeSize); terr != nil {
			l.sealLocked(fmt.Errorf("wal: append failed (%v) and rollback failed (%v)", err, terr))
			return fmt.Errorf("wal: append failed (%v) and rollback failed (%v); log sealed", err, terr)
		}
		l.sealLocked(fmt.Errorf("wal: append: %w", err))
		return fmt.Errorf("wal: append: %w", err)
	}
	last := recs[len(recs)-1].Seq
	l.activeSize += int64(len(buf))
	l.activeLast = last
	l.activeRecs += len(recs)
	l.nextSeq = last + 1
	l.lastSeq.Store(last)
	if l.opts.Mode == ModeAlways {
		if err := l.active.Sync(); err != nil {
			l.sealLocked(fmt.Errorf("wal: fsync: %w", err))
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.fsyncs.Add(1)
		l.durableSeq.Store(last)
	}
	return nil
}
