package shard

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"xmlest/internal/fsio"
	"xmlest/internal/pattern"
)

// The group-commit chaos workload: the same unique-tag batches as the
// serial chaos sweep, but appended by concurrent goroutines so batches
// coalesce into commit groups, with a checkpoint racing the appends.
// The acked-or-absent invariant is exactly as before — group commit
// must not weaken it — plus its sharper form: a group whose single
// write or fsync failed must refuse EVERY batch in it, so no fault
// point may produce an acked batch that recovery cannot reproduce
// bit-identically.

// runGroupChaosWorkload appends all chaos batches concurrently and
// reports which were acknowledged, in ascending batch order.
func runGroupChaosWorkload(dir string, fsys fsio.FS) (acked []int, shutdown func()) {
	d, err := OpenDurable(dir, nil, chaosCfg(fsys))
	if err != nil {
		return nil, func() {}
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < chaosBatches; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := d.AppendDocs(chaosDoc(i)); err == nil {
				mu.Lock()
				acked = append(acked, i)
				mu.Unlock()
			}
		}(i)
	}
	_, _ = d.Checkpoint() // races the appends; may fail under fault
	wg.Wait()
	_, _ = d.Checkpoint()
	sort.Ints(acked)
	return acked, func() { _ = d.Close() }
}

// groupChaosControlRun discovers the op-count envelope of a fault-free
// concurrent run. Unlike the serial sweep the op schedule is not
// deterministic — concurrency reorders I/O — so the count is a sweep
// range, not an exact replay script; every op index is still a valid
// fault point and the invariant is schedule-independent.
func groupChaosControlRun(t *testing.T) uint64 {
	t.Helper()
	control := fsio.NewFaultFS(fsio.OS, fsio.Faults{})
	dir := t.TempDir()
	acked, shutdown := runGroupChaosWorkload(dir, control)
	shutdown()
	if len(acked) != chaosBatches {
		t.Fatalf("fault-free control run acked %v, want all %d batches", acked, chaosBatches)
	}
	verifyAckedOrAbsent(t, dir, acked, "group control")
	return control.OpCount()
}

func runGroupChaosCase(t *testing.T, faults fsio.Faults, label string) {
	t.Helper()
	dir := t.TempDir()
	ffs := fsio.NewFaultFS(fsio.OS, faults)
	acked, shutdown := runGroupChaosWorkload(dir, ffs)
	ffs.PowerCut() // crash first...
	shutdown()     // ...then release descriptors
	verifyAckedOrAbsent(t, dir, acked, label)
}

// TestGroupChaosSweepEveryOp injects a one-shot EIO at every I/O op
// index the concurrent workload reaches, power-cuts, recovers, and
// requires acked-or-absent with bit-identical estimates. A partial
// group ack at any fault point would surface here as an acked batch
// whose estimate recovery cannot reproduce.
func TestGroupChaosSweepEveryOp(t *testing.T) {
	total := groupChaosControlRun(t)
	if total < 20 {
		t.Fatalf("workload performed only %d ops; sweep would be vacuous", total)
	}
	for op := uint64(1); op <= total; op++ {
		op := op
		t.Run(fmt.Sprintf("fail-op-%d", op), func(t *testing.T) {
			t.Parallel()
			runGroupChaosCase(t, fsio.Faults{FailOp: op}, fmt.Sprintf("group fail-op=%d", op))
		})
	}
}

// TestGroupChaosSweepTornAndSticky repeats the sweep with the nastier
// fault shapes: torn group writes (half the multi-record frame lands)
// and sticky disks at a spread of op indexes.
func TestGroupChaosSweepTornAndSticky(t *testing.T) {
	total := groupChaosControlRun(t)
	for op := uint64(1); op <= total; op += 3 {
		op := op
		t.Run(fmt.Sprintf("torn-op-%d", op), func(t *testing.T) {
			t.Parallel()
			runGroupChaosCase(t, fsio.Faults{FailOp: op, Torn: true},
				fmt.Sprintf("group torn-op=%d", op))
		})
		t.Run(fmt.Sprintf("sticky-op-%d", op), func(t *testing.T) {
			t.Parallel()
			runGroupChaosCase(t, fsio.Faults{FailOp: op, Sticky: true},
				fmt.Sprintf("group sticky-op=%d", op))
		})
	}
}

// TestGroupFsyncFailureRefusesEveryBatch pins no-partial-group-acks at
// the store level: with every fsync failing, concurrent appends must
// ALL be refused — whatever groups they landed in — and recovery finds
// an empty database.
func TestGroupFsyncFailureRefusesEveryBatch(t *testing.T) {
	dir := t.TempDir()
	ffs := fsio.NewFaultFS(fsio.OS, fsio.Faults{SyncFailAfter: 1})
	acked, shutdown := runGroupChaosWorkload(dir, ffs)
	ffs.PowerCut()
	shutdown()
	if len(acked) != 0 {
		t.Fatalf("batches %v acked though no fsync ever succeeded", acked)
	}
	verifyAckedOrAbsent(t, dir, nil, "group fsync-failure")
}

// TestGroupCommitRaceStress hammers the committer from concurrent
// appenders while checkpoints and compactions race it, then checks the
// group-commit accounting: every acked batch is counted exactly once
// across the formed groups, and the recovered store holds every acked
// document. Run with -race this is the committer's data-race probe.
func TestGroupCommitRaceStress(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, nil, chaosCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Seed one document synchronously so the racing estimate loop's
	// predicate exists from the start.
	if _, _, err := d.AppendDocs([][]byte{[]byte("<department><stress>seed</stress></department>")}); err != nil {
		t.Fatal(err)
	}
	const appenders, perWorker = 4, 12
	var wg sync.WaitGroup
	var ackCount int64
	var ackMu sync.Mutex
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				doc := [][]byte{[]byte(fmt.Sprintf("<department><stress>w%d-%d</stress></department>", w, i))}
				if _, _, err := d.AppendDocs(doc); err != nil {
					t.Errorf("append w%d-%d: %v", w, i, err)
					return
				}
				ackMu.Lock()
				ackCount++
				ackMu.Unlock()
			}
		}(w)
	}
	stop := make(chan struct{})
	var loops sync.WaitGroup
	loops.Add(2)
	go func() {
		defer loops.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	go func() {
		defer loops.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.store.Compact(CompactionPolicy{}); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			set := d.store.Current()
			p, _ := pattern.Parse("//department//stress")
			if _, err := set.EstimateTwig(p, durableTestOpts); err != nil {
				t.Errorf("estimate: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	loops.Wait()

	gc := d.Stats().GroupCommit
	total := uint64(appenders*perWorker) + 1 // + the seed document
	if gc.Batches != total {
		t.Fatalf("group-commit batches %d, want %d (every ack counted exactly once)", gc.Batches, total)
	}
	if gc.Groups == 0 || gc.Groups > gc.Batches {
		t.Fatalf("groups %d outside [1, %d]", gc.Groups, gc.Batches)
	}
	if gc.GroupSize.Count != gc.Groups || gc.GroupSize.Max == 0 {
		t.Fatalf("group-size histogram %+v inconsistent with %d groups", gc.GroupSize, gc.Groups)
	}
	if gc.Fsyncs == 0 {
		t.Fatal("no fsyncs counted under ModeAlways")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover and account for every acked document.
	d2, err := OpenDurable(dir, nil, chaosCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Store().Current().TotalDocs(); got != int(total) {
		t.Fatalf("recovered %d docs, want %d", got, total)
	}
}
