package histogram

import (
	"math/rand"
	"testing"
)

// randomCoverage builds a coverage histogram with n random entries on a
// g×g grid (deterministic per seed).
func randomCoverage(g, n int, seed int64) *Coverage {
	rng := rand.New(rand.NewSource(seed))
	c := NewCoverage(MustUniformGrid(g, 4*g))
	for k := 0; k < n; k++ {
		i := rng.Intn(g)
		j := i + rng.Intn(g-i)
		m := rng.Intn(i + 1)
		n2 := j + rng.Intn(g-j)
		c.SetFrac(i, j, m, n2, rng.Float64())
	}
	return c
}

// TestFlattenMatchesMaps pins the CSR form against the map-backed
// build representation: every lookup agrees bit-for-bit and the
// iteration is exhaustive and sorted.
func TestFlattenMatchesMaps(t *testing.T) {
	c := randomCoverage(12, 200, 1)
	f := c.Flatten()
	if f.Len() != c.Entries() {
		t.Fatalf("flat len %d != entries %d", f.Len(), c.Entries())
	}
	// Every flattened entry must equal the map lookup; iteration must
	// be strictly ascending in (i, j, m, n).
	prevV, prevA := -1, -1
	seen := 0
	f.Each(func(i, j, m, n int, fr float64) {
		seen++
		v := i<<16 | j
		a := m<<16 | n
		if v < prevV || (v == prevV && a <= prevA) {
			t.Fatalf("iteration not strictly ascending at (%d,%d,%d,%d)", i, j, m, n)
		}
		prevV, prevA = v, a
		if got := c.Frac(i, j, m, n); got != fr {
			t.Fatalf("map Frac(%d,%d,%d,%d)=%v, flat %v", i, j, m, n, got, fr)
		}
		if got := f.Frac(i, j, m, n); got != fr {
			t.Fatalf("flat binary-search Frac(%d,%d,%d,%d)=%v, want %v", i, j, m, n, got, fr)
		}
	})
	if seen != c.Entries() {
		t.Fatalf("Each visited %d of %d entries", seen, c.Entries())
	}
	// CoveredFrac must equal the sorted-order row sum of the map.
	g := c.Grid().Size()
	for i := 0; i < g; i++ {
		for j := i; j < g; j++ {
			var want float64
			f.Each(func(vi, vj, _, _ int, fr float64) {
				if vi == i && vj == j {
					want += fr
				}
			})
			if got := c.CoveredFrac(i, j); got != want {
				t.Fatalf("CoveredFrac(%d,%d)=%v, want %v", i, j, got, want)
			}
		}
	}
	// Misses return zero through both lookups.
	if f.Frac(g-1, g-1, 0, 0) != c.Frac(g-1, g-1, 0, 0) {
		t.Fatal("miss lookups disagree")
	}
}

// TestFlattenInvalidation: SetFrac drops the cached CSR and the next
// Flatten reflects the mutation; an unchanged histogram reuses the
// exact cached object (the satellite fix: no recomputation on repeated
// marshal/iterate calls).
func TestFlattenInvalidation(t *testing.T) {
	c := randomCoverage(8, 40, 2)
	f1 := c.Flatten()
	if f2 := c.Flatten(); f2 != f1 {
		t.Fatal("Flatten recomputed on an unmutated histogram")
	}
	if _, err := c.MarshalBinary(); err != nil {
		t.Fatal(err)
	}
	if f3 := c.Flatten(); f3 != f1 {
		t.Fatal("MarshalBinary invalidated the cached flat form")
	}
	c.SetFrac(0, 1, 0, 2, 0.5)
	f4 := c.Flatten()
	if f4 == f1 {
		t.Fatal("Flatten not invalidated by SetFrac")
	}
	if got := f4.Frac(0, 1, 0, 2); got != 0.5 {
		t.Fatalf("mutated entry = %v, want 0.5", got)
	}
	// Deleting via zero removes from the flat form too.
	c.SetFrac(0, 1, 0, 2, 0)
	if got := c.Flatten().Frac(0, 1, 0, 2); got != 0 {
		t.Fatalf("deleted entry still present: %v", got)
	}
}

// TestPositionSparseConsistency: the cached sparse cell list backing
// NonZero/EachNonZero/MarshalBinary tracks mutations.
func TestPositionSparseConsistency(t *testing.T) {
	h := NewPosition(MustUniformGrid(6, 24))
	h.Set(0, 3, 2)
	h.Set(2, 4, 1.5)
	if h.NonZero() != 2 {
		t.Fatalf("NonZero = %d, want 2", h.NonZero())
	}
	h.Set(2, 4, 0)
	h.Add(5, 5, 7)
	if h.NonZero() != 2 {
		t.Fatalf("NonZero after mutation = %d, want 2", h.NonZero())
	}
	blob, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPosition(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count(0, 3) != 2 || back.Count(5, 5) != 7 || back.Count(2, 4) != 0 {
		t.Fatalf("roundtrip mismatch: %v %v %v", back.Count(0, 3), back.Count(5, 5), back.Count(2, 4))
	}
}
