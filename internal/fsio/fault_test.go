package fsio

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestParseFaults(t *testing.T) {
	f, err := ParseFaults("fail-op=17,torn,sticky")
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	if f.FailOp != 17 || !f.Torn || !f.Sticky {
		t.Fatalf("ParseFaults = %+v", f)
	}
	f, err = ParseFaults("sync-fail-after=3, enospc-after=4096")
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	if f.SyncFailAfter != 3 || f.ENOSPCAfter != 4096 {
		t.Fatalf("ParseFaults = %+v", f)
	}
	for _, bad := range []string{"fail-op", "nope", "fail-op=x"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q): want error", bad)
		}
	}
}

// mustWriteSynced creates path through ffs with content, fsyncs it and
// syncs its parent directory, making both content and dirent durable.
func mustWriteSynced(t *testing.T, ffs *FaultFS, path, content string) {
	t.Helper()
	f, err := ffs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", path, err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatalf("Write(%s): %v", path, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync(%s): %v", path, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close(%s): %v", path, err)
	}
	if err := ffs.SyncDir(filepath.Dir(path)); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
}

func TestFailOpExactAndSticky(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, Faults{FailOp: 2})
	// Op 1: create (succeeds). Op 2: write (fails). Op 3+: succeed again.
	f, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("op 2 write: got %v, want EIO", err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("op 3 write after non-sticky fault: %v", err)
	}
	f.Close()

	ffs = NewFaultFS(OS, Faults{FailOp: 2, Sticky: true})
	f, err = ffs.OpenFile(filepath.Join(dir, "b"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("op 2 write: got %v, want EIO", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("op 3 write under sticky fault: got %v, want EIO", err)
	}
	if err := ffs.SyncDir(dir); !errors.Is(err, syscall.EIO) {
		t.Fatalf("syncdir under sticky fault: got %v, want EIO", err)
	}
	f.Close()
}

func TestTornWriteLandsHalf(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn")
	ffs := NewFaultFS(OS, Faults{FailOp: 2, Torn: true})
	f, err := ffs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if err == nil {
		t.Fatal("torn write: want error")
	}
	if n != 4 {
		t.Fatalf("torn write landed %d bytes, want 4", n)
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if string(got) != "abcd" {
		t.Fatalf("on disk after torn write: %q, want \"abcd\"", got)
	}
}

func TestENOSPCBudget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "full")
	ffs := NewFaultFS(OS, Faults{ENOSPCAfter: 6})
	f, err := ffs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Write([]byte("abcd")); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	n, err := f.Write([]byte("efgh"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write past budget: got %v, want ENOSPC", err)
	}
	if n != 2 {
		t.Fatalf("partial write landed %d bytes, want 2", n)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("every later write: got %v, want ENOSPC", err)
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if string(got) != "abcdef" {
		t.Fatalf("on disk: %q, want \"abcdef\"", got)
	}
}

// TestSyncFailureFreezesDurableWatermark is the Postgres fsync-gate
// scenario: once an fsync fails, the unsynced bytes are gone for good —
// a later "successful" fsync must not resurrect them.
func TestSyncFailureFreezesDurableWatermark(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	ffs := NewFaultFS(OS, Faults{})
	mustWriteSynced(t, ffs, path, "hello")

	f, err := ffs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := f.Write([]byte(" world")); err != nil {
		t.Fatalf("append: %v", err)
	}
	ffs.SetFaults(Faults{FailOp: ffs.OpCount() + 1}) // next op is the fsync
	if err := f.Sync(); err == nil {
		t.Fatal("injected fsync: want error")
	}
	ffs.ClearFaults()
	if err := f.Sync(); err != nil {
		// The retried fsync "succeeds" — exactly the trap: the kernel
		// already dropped the dirty pages.
		t.Fatalf("retried fsync: %v", err)
	}
	f.Close()

	ffs.PowerCut()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read after power cut: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("after failed-then-retried fsync + power cut: %q, want \"hello\"", got)
	}
}

func TestPowerCutDropsUnsyncedBytesAndUnlinkedFiles(t *testing.T) {
	dir := t.TempDir()
	synced := filepath.Join(dir, "synced")
	ffs := NewFaultFS(OS, Faults{})
	mustWriteSynced(t, ffs, synced, "durable")

	// Append unsynced bytes to the durable file.
	f, err := ffs.OpenFile(synced, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := f.Write([]byte(" and not")); err != nil {
		t.Fatalf("append: %v", err)
	}
	f.Close()

	// Create a file whose dirent is never made durable.
	unlinked := filepath.Join(dir, "unlinked")
	g, err := ffs.OpenFile(unlinked, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	g.Write([]byte("ghost"))
	g.Sync() // content synced, but the directory entry is not
	g.Close()

	ffs.PowerCut()
	if got, _ := os.ReadFile(synced); string(got) != "durable" {
		t.Fatalf("synced file after power cut: %q, want \"durable\"", got)
	}
	if _, err := os.Stat(unlinked); !os.IsNotExist(err) {
		t.Fatalf("unlinked file survived power cut: %v", err)
	}
	if _, err := ffs.ReadFile(synced); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("op after power cut: got %v, want ErrPowerCut", err)
	}
}

func TestPowerCutRevertsUncommittedRename(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "MANIFEST")
	tmp := filepath.Join(dir, "MANIFEST.tmp")
	ffs := NewFaultFS(OS, Faults{})
	mustWriteSynced(t, ffs, target, "old")
	mustWriteSynced(t, ffs, tmp, "new")
	if err := ffs.Rename(tmp, target); err != nil {
		t.Fatalf("rename: %v", err)
	}
	// No SyncDir: the rename's dirent never became durable. The
	// adversarial power cut restores the old manifest.
	ffs.PowerCut()
	if got, _ := os.ReadFile(target); string(got) != "old" {
		t.Fatalf("target after power cut: %q, want \"old\"", got)
	}
}

func TestSyncDirCommitsRename(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "MANIFEST")
	tmp := filepath.Join(dir, "MANIFEST.tmp")
	ffs := NewFaultFS(OS, Faults{})
	mustWriteSynced(t, ffs, target, "old")
	mustWriteSynced(t, ffs, tmp, "new")
	if err := ffs.Rename(tmp, target); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if err := ffs.SyncDir(dir); err != nil {
		t.Fatalf("syncdir: %v", err)
	}
	ffs.PowerCut()
	if got, _ := os.ReadFile(target); string(got) != "new" {
		t.Fatalf("target after committed rename + power cut: %q, want \"new\"", got)
	}
}

func TestSyncFailAfterGate(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, Faults{SyncFailAfter: 2})
	f, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync 2: got %v, want EIO", err)
	}
	// The gate is sticky and shared with directory syncs.
	if err := ffs.SyncDir(dir); !errors.Is(err, syscall.EIO) {
		t.Fatalf("dir sync after gate: got %v, want EIO", err)
	}
	f.Close()
}

func TestOpLogIsDeterministic(t *testing.T) {
	workload := func() []Op {
		dir := t.TempDir()
		ffs := NewFaultFS(OS, Faults{})
		mustWriteSynced(t, ffs, filepath.Join(dir, "a"), "one")
		mustWriteSynced(t, ffs, filepath.Join(dir, "b"), "two")
		if err := ffs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "c")); err != nil {
			t.Fatalf("rename: %v", err)
		}
		return ffs.Ops()
	}
	a, b := workload(), workload()
	if len(a) != len(b) {
		t.Fatalf("op counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		// Paths embed the per-run TempDir; the schedule itself — index
		// and kind — is what fault sweeps replay against.
		if a[i].Index != b[i].Index || a[i].Kind != b[i].Kind {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
