package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"xmlest/internal/match"
	"xmlest/internal/pattern"
	"xmlest/internal/planner"
	"xmlest/internal/xmltree"
)

func TestExecuteDeadlineZeroDisables(t *testing.T) {
	tr := xmltree.Fig1Document()
	est, resolve := setup(t, tr, 4)
	p := pattern.MustParse("//department//faculty")
	plan, err := planner.Best(est, p)
	if err != nil {
		t.Fatalf("Best: %v", err)
	}
	want, _ := match.CountTwig(tr, p, resolve)
	stats, err := ExecuteDeadline(tr, p, plan, resolve, time.Time{})
	if err != nil {
		t.Fatalf("ExecuteDeadline: %v", err)
	}
	if float64(stats.Results) != want {
		t.Errorf("results = %d, want %v", stats.Results, want)
	}
}

func TestExecuteDeadlineExpired(t *testing.T) {
	// A deadline already in the past must abort with ErrDeadline once
	// the pull loop has drained enough tuples to hit a check. The
	// Fig. 1 document is small, so pick a pattern with > 1024 result
	// tuples by repeating the document.
	tr := bigTree(t, 3000)
	est, resolve := setup(t, tr, 4)
	p := pattern.MustParse("//a//b")
	plan, err := planner.Best(est, p)
	if err != nil {
		t.Fatalf("Best: %v", err)
	}
	_, err = ExecuteDeadline(tr, p, plan, resolve, time.Now().Add(-time.Second))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("ErrDeadline must wrap context.DeadlineExceeded")
	}
}

// bigTree builds <r> with n <a><b/></a> children: //a//b has n result
// tuples, enough to cross the deadline-check stride.
func bigTree(t *testing.T, n int) *xmltree.Tree {
	t.Helper()
	doc := make([]byte, 0, 16*n+8)
	doc = append(doc, "<r>"...)
	for i := 0; i < n; i++ {
		doc = append(doc, "<a><b/></a>"...)
	}
	doc = append(doc, "</r>"...)
	tr, err := xmltree.ParseString(string(doc))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
