// Benchmarks of the sharded estimator lifecycle — the PR 2 headline
// series. BenchmarkAppendToVisible measures the time from "document
// appended" to "estimate reflects it" at growing corpus sizes: with
// the sharded architecture only the new shard is summarized, so the
// time is flat in the corpus size, where a monolithic rebuild
// (BenchmarkAppendRebuildMonolithic) grows linearly.
package xmlest_test

import (
	"fmt"
	"testing"

	"xmlest"
	"xmlest/internal/core"
	"xmlest/internal/datagen"
	"xmlest/internal/predicate"
	"xmlest/internal/shard"
	"xmlest/internal/xmltree"
)

// benchDoc generates one DBLP-shaped document (~3k nodes at this
// scale), distinct per seed.
func benchDoc(seed int64) *xmltree.Tree {
	return datagen.GenerateDBLP(datagen.DBLPConfig{Seed: seed, Scale: 0.02})
}

// benchCorpus builds a sharded database holding n document shards and
// a live estimator over them.
func benchCorpus(b *testing.B, n int) (*xmlest.Database, *xmlest.Estimator) {
	b.Helper()
	db := xmlest.FromTree(benchDoc(1))
	for i := 1; i < n; i++ {
		if _, err := db.AppendTree(benchDoc(int64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
	db.AddAllTagPredicates()
	est, err := db.NewEstimator(xmlest.Options{GridSize: 10})
	if err != nil {
		b.Fatal(err)
	}
	return db, est
}

// BenchmarkAppendToVisible times one append-to-visible cycle — Append
// of one document plus the first Estimate that reflects it — against
// corpora of 1, 10 and 40 shards. The acceptance claim is that the
// numbers stay flat as the corpus grows.
func BenchmarkAppendToVisible(b *testing.B) {
	b.ReportAllocs()
	for _, shards := range []int{1, 10, 40} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			db, est := benchCorpus(b, shards)
			doc := benchDoc(999)
			before, err := est.Estimate("//article//author")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				info, err := db.AppendTree(doc)
				if err != nil {
					b.Fatal(err)
				}
				res, err := est.Estimate("//article//author")
				if err != nil {
					b.Fatal(err)
				}
				if res.Estimate <= before.Estimate {
					b.Fatal("append not visible")
				}
				b.StopTimer()
				if _, err := db.DropShard(info.ID); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAppendRebuildMonolithic is the before picture: making one
// appended document visible by rebuilding the whole monolithic summary
// (merge, re-materialize the catalog, rebuild every histogram). Grows
// linearly with the corpus.
func BenchmarkAppendRebuildMonolithic(b *testing.B) {
	b.ReportAllocs()
	for _, shards := range []int{1, 10, 40} {
		b.Run(fmt.Sprintf("docs=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			corpus := make([]*xmltree.Tree, shards)
			for i := range corpus {
				corpus[i] = benchDoc(int64(i + 1))
			}
			doc := benchDoc(999)
			spec := predicate.Spec{AllTags: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				merged := xmltree.Merge(append(append([]*xmltree.Tree{}, corpus...), doc)...)
				cat := spec.Build(merged)
				if _, err := core.NewEstimator(cat, core.Options{GridSize: 10}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedEstimate times a hot estimate against sharded
// corpora of growing width, on both serving paths: the default
// merged-summary path (the store's background fold answers in O(1)
// shards — the serving set is folded synchronously before timing) and
// the pure per-shard fan-out (one compiled query per shard, summed) it
// falls back to for fresh unmerged tails.
func BenchmarkShardedEstimate(b *testing.B) {
	b.ReportAllocs()
	for _, shards := range []int{10, 40} {
		for _, mode := range []string{"merged", "fanout"} {
			b.Run(fmt.Sprintf("shards=%d/%s", shards, mode), func(b *testing.B) {
				b.ReportAllocs()
				// The serving default caps folds at narrow (post-compaction)
				// sets; this benchmark deliberately folds a wide one to
				// isolate hot-estimate cost at scale.
				defer shard.SetMergedMaxGridSize(shard.SetMergedMaxGridSize(1024))
				db := xmlest.FromTree(benchDoc(1))
				for i := 1; i < shards; i++ {
					if _, err := db.AppendTree(benchDoc(int64(i + 1))); err != nil {
						b.Fatal(err)
					}
				}
				db.AddAllTagPredicates()
				opts := xmlest.Options{GridSize: 10, DisableMergedServing: mode == "fanout"}
				est, err := db.NewEstimator(opts)
				if err != nil {
					b.Fatal(err)
				}
				db.MergeSummaries()
				if mode == "merged" {
					if info, ok := est.MergedInfo(); !ok || !info.Fresh {
						b.Fatalf("merged view not fresh: %+v", info)
					}
				}
				if _, err := est.Estimate("//article//author"); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := est.Estimate("//article//author"); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSnapshot times taking a pinned snapshot (a pointer copy).
func BenchmarkSnapshot(b *testing.B) {
	b.ReportAllocs()
	_, est := benchCorpus(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := est.Snapshot(); s == nil {
			b.Fatal("nil snapshot")
		}
	}
}

// BenchmarkCompact times one full compaction round merging ten ~3k-node
// shards into one.
func BenchmarkCompact(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, _ := benchCorpus(b, 10)
		b.StartTimer()
		merged, err := db.Compact(xmlest.CompactionPolicy{TierRatio: 1e9})
		if err != nil {
			b.Fatal(err)
		}
		if merged != 10 {
			b.Fatalf("merged %d, want 10", merged)
		}
	}
}
